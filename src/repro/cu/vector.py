"""Lane-vectorized VALU cores and their per-lane golden model.

This module is the single home of the wavefront-wide (64-lane) NumPy
implementations of the VOP1 / VOP2 / VOP3 / VOPC / VOP3b instruction
classes.  Registers are ``(64,) uint32`` columns; float ops go through
reinterpret-cast views (``.view(np.float32)``) so every lane keeps the
exact IEEE-754 bit pattern the scalar SI datapath would produce — NaN
payloads, signed zeros and denormals included.  EXEC masking is a
writeback concern only: cores compute all 64 lanes, the caller masks
the store (`Wavefront.write_vgpr` / :func:`mask_from_bools`).

Three layers live here:

* **Array cores** (``VBIN_IMPL`` / ``VUN_IMPL`` / ``VTRI_IMPL`` /
  ``VCMP_IMPL``) plus the packed-mask and carry-chain helpers — these
  are what :mod:`repro.cu.operations`, the prepared-plan closures and
  the superblock codegen execute.
* **A per-lane scalar interpreter** (:func:`execute_lanewise`) that
  re-implements every vectorized opcode with Python-int / NumPy-scalar
  arithmetic, one lane at a time, writing only EXEC-enabled lanes.  It
  shares *no* array code with the fast path, so agreement between the
  two is evidence the vectorization is semantics-preserving.  The
  ``vector`` fuzz oracle and the conformance matrix
  (``tests/cu/test_vector_conformance.py``) pin the two bit-identical.
* **The opcode registry** (:data:`VECTOR_OPS`) enumerating every
  vectorized instruction with its encoding class and a canonical
  assembly template, which the conformance matrix iterates.

Why the helpers avoid 64-bit widening: ``a + b`` on uint32 wraps, and
the carry-out is recoverable as ``result < a`` (with a carry-in, the
two increments cannot both wrap, so OR-ing the two comparisons is the
exact 33-bit carry).  That keeps the hot closures on 32-bit arrays.
"""

from __future__ import annotations

import contextlib
import operator
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..isa import registers as regs
from ..isa.formats import Format
from .wavefront import MASK32, MASK64

# ---------------------------------------------------------------------------
# Packed-mask helpers (EXEC / VCC <-> per-lane booleans).
# ---------------------------------------------------------------------------

_LANES = np.arange(64, dtype=np.uint64)
_POW2 = np.uint64(1) << _LANES


def bools_from_mask(mask64):
    """Per-lane booleans from a packed 64-bit mask (lane 0 = bit 0)."""
    packed = np.frombuffer(int(mask64 & MASK64).to_bytes(8, "little"),
                           dtype=np.uint8)
    return np.unpackbits(packed, bitorder="little").view(np.bool_)


def mask_from_bools(bools, lane_mask=None):
    """Pack per-lane booleans into a 64-bit int, zeroing inactive lanes.

    ``lane_mask=None`` means all lanes are active (the superblock
    codegen passes ``None`` when EXEC is known to be full).
    """
    if lane_mask is not None:
        bools = np.logical_and(bools, lane_mask)
    return int(np.packbits(bools, bitorder="little").view("<u8")[0])


# ---------------------------------------------------------------------------
# Carry-chain helpers (VOP2/VOP3b v_add_i32 .. v_subb_u32).
# ---------------------------------------------------------------------------

def add_with_carry(a, b, cin=None):
    """``(a + b (+ cin)) mod 2**32`` and the exact carry-out per lane.

    ``a``/``b`` are uint32 arrays, ``cin`` a bool array (or None).
    The carry-out equals the widened ``(a64 + b64 + cin) >> 32`` test:
    the first add wraps iff ``result < a``, and adding the 0/1 carry-in
    can only wrap when the first add did not reach 2**32, so the two
    wrap conditions never co-occur and their OR is the 33rd bit.
    """
    result = a + b
    carry = result < a
    if cin is not None:
        inc = cin.view(np.uint8)
        result2 = result + inc
        carry = carry | (result2 < result)
        result = result2
    return result, carry


def sub_with_borrow(a, b, cin=None):
    """``(a - b (- cin)) mod 2**32`` and the exact borrow-out per lane.

    Borrow iff ``a < b + cin`` as integers: the first subtract borrows
    iff ``a < b``, and subtracting the 0/1 carry-in borrows iff the
    intermediate difference is smaller than it — together exactly the
    widened ``(a64 - b64 - cin) >> 32 != 0`` test the interpreter used.
    """
    result = a - b
    borrow = a < b
    if cin is not None:
        inc = cin.view(np.uint8)
        borrow = borrow | (result < inc)
        result = result - inc
    return result, borrow


# ---------------------------------------------------------------------------
# Array views and small vector utilities.
# ---------------------------------------------------------------------------

def _sv(a):
    """Signed view of a uint32 vector."""
    return a.view(np.int32)


def _fv(a):
    """Float32 view of a uint32 vector."""
    return a.view(np.float32)


def _from_f(f):
    """Pack a float32 array back into uint32 bit patterns."""
    return np.asarray(f, dtype=np.float32).view(np.uint32)


def _shift_amounts(a):
    return (a & np.uint32(31)).astype(np.uint32)


def _sext24(a):
    v = (a & np.uint32(0xFFFFFF)).astype(np.int64)
    return np.where(v & 0x800000, v - 0x1000000, v)


def _cvt_u32_f32(a):
    f = _fv(a).astype(np.float64)
    f = np.nan_to_num(f, nan=0.0)
    return np.clip(np.trunc(f), 0, 4294967295).astype(np.uint32)


def _cvt_i32_f32(a):
    f = _fv(a).astype(np.float64)
    f = np.nan_to_num(f, nan=0.0)
    return np.clip(np.trunc(f), -2147483648, 2147483647) \
        .astype(np.int32).view(np.uint32)


def _rndne(a):
    # IEEE round-to-nearest-even, which is what numpy's rint does.
    return _from_f(np.rint(_fv(a)))


def _safe_unary(fn):
    """Wrap a transcendental so invalid inputs follow IEEE (inf/nan)."""
    def wrapped(a):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return _from_f(fn(_fv(a).astype(np.float64)).astype(np.float32))
    return wrapped


def _bfrev_vec(a):
    v = a.copy()
    v = ((v >> np.uint32(1)) & np.uint32(0x55555555)) | \
        ((v & np.uint32(0x55555555)) << np.uint32(1))
    v = ((v >> np.uint32(2)) & np.uint32(0x33333333)) | \
        ((v & np.uint32(0x33333333)) << np.uint32(2))
    v = ((v >> np.uint32(4)) & np.uint32(0x0F0F0F0F)) | \
        ((v & np.uint32(0x0F0F0F0F)) << np.uint32(4))
    v = ((v >> np.uint32(8)) & np.uint32(0x00FF00FF)) | \
        ((v & np.uint32(0x00FF00FF)) << np.uint32(8))
    return (v >> np.uint32(16)) | (v << np.uint32(16))


def _mul_hi_u32(a, b):
    wide = a.astype(np.uint64) * b.astype(np.uint64)
    return (wide >> np.uint64(32)).astype(np.uint32)


def _mul_hi_i32(a, b):
    wide = _sv(a).astype(np.int64) * _sv(b).astype(np.int64)
    return ((wide >> np.int64(32)) & np.int64(MASK32)).astype(np.uint32)


def _mul_lo(a, b):
    wide = a.astype(np.uint64) * b.astype(np.uint64)
    return (wide & np.uint64(MASK32)).astype(np.uint32)


def _v_bfe_u32(a, b, c):
    offset = (b & np.uint32(31)).astype(np.uint32)
    width = (c & np.uint32(31)).astype(np.uint32)
    mask = np.where(width == 0, np.uint32(0),
                    ((np.uint64(1) << width.astype(np.uint64)) - np.uint64(1))
                    .astype(np.uint32))
    return (a >> offset) & mask


def _v_bfe_i32(a, b, c):
    u = _v_bfe_u32(a, b, c)
    width = (c & np.uint32(31)).astype(np.uint32)
    sign_bit = np.where(width == 0, np.uint32(0),
                        np.uint32(1) << np.maximum(width, np.uint32(1)) - np.uint32(1))
    extended = np.where((width != 0) & ((u & sign_bit) != 0),
                        u | (~(sign_bit - np.uint32(1)) & ~sign_bit), u)
    return extended


def _v_alignbit(a, b, c):
    wide = (a.astype(np.uint64) << np.uint64(32)) | b.astype(np.uint64)
    return ((wide >> (c & np.uint32(31)).astype(np.uint64)) &
            np.uint64(MASK32)).astype(np.uint32)


# ---------------------------------------------------------------------------
# Array cores: one masked NumPy op per instruction.
# ---------------------------------------------------------------------------

#: Two-source vector cores: name -> f(a, b) -> uint32 array.
VBIN_IMPL = {
    "v_add_f32": lambda a, b: _from_f(_fv(a) + _fv(b)),
    "v_sub_f32": lambda a, b: _from_f(_fv(a) - _fv(b)),
    "v_subrev_f32": lambda a, b: _from_f(_fv(b) - _fv(a)),
    "v_mul_f32": lambda a, b: _from_f(_fv(a) * _fv(b)),
    "v_min_f32": lambda a, b: _from_f(np.minimum(_fv(a), _fv(b))),
    "v_max_f32": lambda a, b: _from_f(np.maximum(_fv(a), _fv(b))),
    "v_mul_i32_i24": lambda a, b: (
        (_sext24(a) * _sext24(b)) & np.int64(MASK32)).astype(np.uint32),
    "v_min_i32": lambda a, b: np.minimum(_sv(a), _sv(b)).view(np.uint32),
    "v_max_i32": lambda a, b: np.maximum(_sv(a), _sv(b)).view(np.uint32),
    "v_min_u32": lambda a, b: np.minimum(a, b),
    "v_max_u32": lambda a, b: np.maximum(a, b),
    "v_lshr_b32": lambda a, b: a >> _shift_amounts(b),
    "v_lshrrev_b32": lambda a, b: b >> _shift_amounts(a),
    "v_ashr_i32": lambda a, b: (_sv(a) >> _shift_amounts(b).astype(np.int32))
    .view(np.uint32),
    "v_ashrrev_i32": lambda a, b: (_sv(b) >> _shift_amounts(a).astype(np.int32))
    .view(np.uint32),
    "v_lshl_b32": lambda a, b: a << _shift_amounts(b),
    "v_lshlrev_b32": lambda a, b: b << _shift_amounts(a),
    "v_and_b32": lambda a, b: a & b,
    "v_or_b32": lambda a, b: a | b,
    "v_xor_b32": lambda a, b: a ^ b,
}

#: One-source vector cores: name -> f(a) -> uint32 array.
VUN_IMPL = {
    "v_mov_b32": lambda a: a.copy(),
    "v_not_b32": lambda a: ~a,
    "v_bfrev_b32": lambda a: _bfrev_vec(a),
    "v_cvt_f32_i32": lambda a: _from_f(_sv(a).astype(np.float32)),
    "v_cvt_f32_u32": lambda a: _from_f(a.astype(np.float32)),
    "v_cvt_u32_f32": _cvt_u32_f32,
    "v_cvt_i32_f32": _cvt_i32_f32,
    "v_fract_f32": lambda a: _from_f(_fv(a) - np.floor(_fv(a))),
    "v_trunc_f32": lambda a: _from_f(np.trunc(_fv(a))),
    "v_ceil_f32": lambda a: _from_f(np.ceil(_fv(a))),
    "v_rndne_f32": _rndne,
    "v_floor_f32": lambda a: _from_f(np.floor(_fv(a))),
    "v_exp_f32": _safe_unary(np.exp2),
    "v_log_f32": _safe_unary(np.log2),
    "v_rcp_f32": _safe_unary(lambda x: 1.0 / x),
    "v_rsq_f32": _safe_unary(lambda x: 1.0 / np.sqrt(x)),
    "v_sqrt_f32": _safe_unary(np.sqrt),
    "v_sin_f32": _safe_unary(np.sin),
    "v_cos_f32": _safe_unary(np.cos),
}

#: Three-source (VOP3-native) cores: name -> f(a, b[, c]) -> uint32 array.
VTRI_IMPL = {
    "v_mad_f32": lambda a, b, c: _from_f(_fv(a) * _fv(b) + _fv(c)),
    "v_fma_f32": lambda a, b, c: _from_f(
        np.float32(1) * (_fv(a).astype(np.float64) * _fv(b).astype(np.float64)
                         + _fv(c).astype(np.float64)).astype(np.float32)),
    "v_mad_i32_i24": lambda a, b, c: (
        (_sext24(a) * _sext24(b) + _sv(c).astype(np.int64)) & np.int64(MASK32)
    ).astype(np.uint32),
    "v_bfe_u32": _v_bfe_u32,
    "v_bfe_i32": _v_bfe_i32,
    "v_bfi_b32": lambda a, b, c: (a & b) | (~a & c),
    "v_alignbit_b32": _v_alignbit,
    "v_mul_lo_u32": _mul_lo,
    "v_mul_hi_u32": _mul_hi_u32,
    "v_mul_lo_i32": _mul_lo,  # low 32 bits are sign-agnostic
    "v_mul_hi_i32": _mul_hi_i32,
}

#: Vector compare cores: comparison name -> NumPy predicate.
VCMP_IMPL = {
    "lt": np.less, "eq": np.equal, "le": np.less_equal,
    "gt": np.greater, "lg": np.not_equal, "ge": np.greater_equal,
}

#: VOP3-encoded ops that take two sources despite the 3-source format.
_VTRI_TWO_SRC = frozenset((
    "v_mul_lo_u32", "v_mul_hi_u32", "v_mul_lo_i32", "v_mul_hi_i32"))

#: Carry/borrow ops (VOP2 writing VCC, or VOP3b writing an SGPR pair).
CARRY_OPS = ("v_add_i32", "v_sub_i32", "v_subrev_i32",
             "v_addc_u32", "v_subb_u32")


# ---------------------------------------------------------------------------
# The opcode registry the conformance matrix iterates.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VectorOpSpec:
    """One vectorized opcode: encoding class + canonical asm template.

    ``line`` uses a fixed register convention — sources ``v0``/``v1``/
    ``v2``, destination ``v6``, masks through ``vcc`` — so a test can
    assemble any registry entry without knowing its shape.
    """

    name: str
    encoding: str       # "VOP1" | "VOP2" | "VOPC" | "VOP3" | "VOP3b"
    arity: int          # vector sources consumed
    is_float: bool      # sources are float32 bit patterns
    line: str


def _op_spec(name, encoding, arity, line):
    return VectorOpSpec(name, encoding, arity, name.endswith("_f32"), line)


def _build_registry():
    ops = {}
    for name in VUN_IMPL:
        ops[name] = _op_spec(name, "VOP1", 1, "{} v6, v0".format(name))
    for name in VBIN_IMPL:
        ops[name] = _op_spec(name, "VOP2", 2, "{} v6, v0, v1".format(name))
    for name in VTRI_IMPL:
        if name in _VTRI_TWO_SRC:
            ops[name] = _op_spec(name, "VOP3", 2, "{} v6, v0, v1".format(name))
        else:
            ops[name] = _op_spec(name, "VOP3", 3,
                                 "{} v6, v0, v1, v2".format(name))
    for cmp_name in VCMP_IMPL:
        for ty in ("f32", "i32", "u32"):
            name = "v_cmp_{}_{}".format(cmp_name, ty)
            ops[name] = _op_spec(name, "VOPC", 2,
                                 "{} vcc, v0, v1".format(name))
    ops["v_cndmask_b32"] = _op_spec(
        "v_cndmask_b32", "VOP2", 2, "v_cndmask_b32 v6, v0, v1, vcc")
    ops["v_mac_f32"] = _op_spec("v_mac_f32", "VOP2", 2, "v_mac_f32 v6, v0, v1")
    for name in ("v_add_i32", "v_sub_i32", "v_subrev_i32"):
        ops[name] = _op_spec(name, "VOP3b", 2,
                             "{} v6, vcc, v0, v1".format(name))
    for name in ("v_addc_u32", "v_subb_u32"):
        ops[name] = _op_spec(name, "VOP3b", 2,
                             "{} v6, vcc, v0, v1, vcc".format(name))
    return ops


#: Every vectorized opcode: name -> VectorOpSpec.
VECTOR_OPS = _build_registry()


# ---------------------------------------------------------------------------
# Per-lane golden model: scalar re-implementation of every core.
#
# Deliberately shares no array code with the cores above.  Integer ops
# are Python-int arithmetic; float ops run one lane at a time on
# 1-element arrays so they hit the same elementwise ufunc loops as the
# 64-lane cores (bit-identical rounding and NaN-payload behavior --
# NumPy float32 *scalars* resolve two-NaN pairs differently, see
# _lane_f32).
# ---------------------------------------------------------------------------

def _bits_to_f32(bits):
    return np.array([bits & MASK32], dtype=np.uint32).view(np.float32)[0]


def _f32_to_bits(value):
    return int(np.array([value], dtype=np.float32).view(np.uint32)[0])


def _lane_s32(x):
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


def _lane_sext24(x):
    v = x & 0xFFFFFF
    return v - 0x1000000 if v & 0x800000 else v


def _lane_brev32(x):
    return int("{:032b}".format(x & MASK32)[::-1], 2)


def _lane_f32(bits):
    """One lane's bit pattern as a 1-element float32 array.

    Float lane cores evaluate on 1-element arrays rather than NumPy
    scalars: scalar float math resolves two-NaN operand pairs to the
    *second* operand's payload while the elementwise ufunc loops (the
    architectural contract, set by the array cores) keep the first.
    A 1-element array runs the same ufunc inner loop, one lane at a
    time.
    """
    return np.array([bits & MASK32], dtype=np.uint32).view(np.float32)


def _lane_fbin(fn):
    def core(a, b):
        return int(_from_f(fn(_lane_f32(a), _lane_f32(b)))[0])
    return core


def _lane_funary(fn):
    def core(a):
        return int(_from_f(fn(_lane_f32(a)))[0])
    return core


def _lane_funary64(fn):
    # Mirrors _safe_unary: evaluate in float64, round once to float32.
    def core(a):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return int(_from_f(
                fn(_lane_f32(a).astype(np.float64)).astype(np.float32))[0])
    return core


def _lane_mad_f32(a, b, c):
    return int(_from_f(_lane_f32(a) * _lane_f32(b) + _lane_f32(c))[0])


def _lane_cvt_u32_f32(a):
    f = np.float64(_bits_to_f32(a))
    if np.isnan(f):
        return 0
    f = np.trunc(f)
    if f < 0.0:
        return 0
    if f > 4294967295.0:
        return 4294967295
    return int(np.uint32(f))


def _lane_cvt_i32_f32(a):
    f = np.float64(_bits_to_f32(a))
    if np.isnan(f):
        return 0
    f = np.trunc(f)
    if f < -2147483648.0:
        f = np.float64(-2147483648.0)
    elif f > 2147483647.0:
        f = np.float64(2147483647.0)
    return int(np.int32(f)) & MASK32


def _lane_bfe_u32(a, b, c):
    offset = b & 31
    width = c & 31
    if width == 0:
        return 0
    return (a >> offset) & ((1 << width) - 1)


def _lane_bfe_i32(a, b, c):
    width = c & 31
    field = _lane_bfe_u32(a, b, c)
    if width and field & (1 << (width - 1)):
        field |= MASK32 ^ ((1 << width) - 1)
    return field & MASK32


_LANE_BIN = {
    "v_add_f32": _lane_fbin(lambda x, y: x + y),
    "v_sub_f32": _lane_fbin(lambda x, y: x - y),
    "v_subrev_f32": _lane_fbin(lambda x, y: y - x),
    "v_mul_f32": _lane_fbin(lambda x, y: x * y),
    "v_min_f32": _lane_fbin(np.minimum),
    "v_max_f32": _lane_fbin(np.maximum),
    "v_mul_i32_i24": lambda a, b: (_lane_sext24(a) * _lane_sext24(b)) & MASK32,
    "v_min_i32": lambda a, b: a if _lane_s32(a) < _lane_s32(b) else b,
    "v_max_i32": lambda a, b: a if _lane_s32(a) > _lane_s32(b) else b,
    "v_min_u32": lambda a, b: a if a < b else b,
    "v_max_u32": lambda a, b: a if a > b else b,
    "v_lshr_b32": lambda a, b: a >> (b & 31),
    "v_lshrrev_b32": lambda a, b: b >> (a & 31),
    "v_ashr_i32": lambda a, b: (_lane_s32(a) >> (b & 31)) & MASK32,
    "v_ashrrev_i32": lambda a, b: (_lane_s32(b) >> (a & 31)) & MASK32,
    "v_lshl_b32": lambda a, b: (a << (b & 31)) & MASK32,
    "v_lshlrev_b32": lambda a, b: (b << (a & 31)) & MASK32,
    "v_and_b32": lambda a, b: a & b,
    "v_or_b32": lambda a, b: a | b,
    "v_xor_b32": lambda a, b: a ^ b,
}

_LANE_UN = {
    "v_mov_b32": lambda a: a,
    "v_not_b32": lambda a: (~a) & MASK32,
    "v_bfrev_b32": _lane_brev32,
    "v_cvt_f32_i32": lambda a: _f32_to_bits(np.float32(_lane_s32(a))),
    "v_cvt_f32_u32": lambda a: _f32_to_bits(np.float32(a)),
    "v_cvt_u32_f32": _lane_cvt_u32_f32,
    "v_cvt_i32_f32": _lane_cvt_i32_f32,
    "v_fract_f32": _lane_funary(lambda x: x - np.floor(x)),
    "v_trunc_f32": _lane_funary(np.trunc),
    "v_ceil_f32": _lane_funary(np.ceil),
    "v_rndne_f32": _lane_funary(np.rint),
    "v_floor_f32": _lane_funary(np.floor),
    "v_exp_f32": _lane_funary64(np.exp2),
    "v_log_f32": _lane_funary64(np.log2),
    "v_rcp_f32": _lane_funary64(lambda x: 1.0 / x),
    "v_rsq_f32": _lane_funary64(lambda x: 1.0 / np.sqrt(x)),
    "v_sqrt_f32": _lane_funary64(np.sqrt),
    "v_sin_f32": _lane_funary64(np.sin),
    "v_cos_f32": _lane_funary64(np.cos),
}

_LANE_TRI = {
    "v_mad_f32": _lane_mad_f32,
    "v_fma_f32": lambda a, b, c: int(_from_f(np.float32(1) * (
        _lane_f32(a).astype(np.float64) * _lane_f32(b).astype(np.float64)
        + _lane_f32(c).astype(np.float64)).astype(np.float32))[0]),
    "v_mad_i32_i24": lambda a, b, c: (
        _lane_sext24(a) * _lane_sext24(b) + _lane_s32(c)) & MASK32,
    "v_bfe_u32": _lane_bfe_u32,
    "v_bfe_i32": _lane_bfe_i32,
    "v_bfi_b32": lambda a, b, c: (a & b) | (((~a) & MASK32) & c),
    "v_alignbit_b32": lambda a, b, c: (((a << 32) | b) >> (c & 31)) & MASK32,
    "v_mul_lo_u32": lambda a, b: (a * b) & MASK32,
    "v_mul_hi_u32": lambda a, b: (a * b) >> 32,
    "v_mul_lo_i32": lambda a, b: (a * b) & MASK32,
    "v_mul_hi_i32": lambda a, b: (
        (_lane_s32(a) * _lane_s32(b)) >> 32) & MASK32,
}

#: Comparison predicates; on NumPy float32 scalars these follow IEEE
#: unordered semantics exactly like the np.less/... array ufuncs.
_LANE_CMP = {
    "lt": operator.lt, "eq": operator.eq, "le": operator.le,
    "gt": operator.gt, "lg": operator.ne, "ge": operator.ge,
}


def _lane_add(a, b, cin):
    total = a + b + cin
    return total & MASK32, total > MASK32


def _lane_sub(a, b, cin):
    return (a - b - cin) & MASK32, a < b + cin


_LANE_CARRY = {
    "v_add_i32": lambda a, b, cin: _lane_add(a, b, 0),
    "v_addc_u32": _lane_add,
    "v_sub_i32": lambda a, b, cin: _lane_sub(a, b, 0),
    "v_subrev_i32": lambda a, b, cin: _lane_sub(b, a, 0),
    "v_subb_u32": _lane_sub,
}


def execute_lanewise(wf, inst):
    """Execute one vector instruction lane by lane (the golden model).

    Reads operands in the same sequence (and with the same failure
    points) as the array path, snapshots every source as Python ints,
    then computes and writes each EXEC-enabled lane individually —
    inactive lanes are never stored to, masks are built bit by bit.
    """
    sp = inst.spec
    name = sp.name
    f = inst.fields
    srcs = [wf.read_vector(f["src0"], inst.literal)]
    if inst.fmt in (Format.VOP2, Format.VOPC):
        srcs.append(wf.read_vgpr(f["vsrc1"]))
    elif inst.fmt is Format.VOP3:
        srcs.append(wf.read_vector(f["src1"], inst.literal))
        if sp.num_srcs >= 3 or name == "v_mac_f32":
            srcs.append(wf.read_vector(f["src2"], inst.literal))
    # Sources may alias the destination row; snapshot before writing.
    ints = [[int(x) for x in s] for s in srcs]
    exec_bits = wf.exec_mask
    lanes = [lane for lane in range(64) if (exec_bits >> lane) & 1]

    with np.errstate(all="ignore"):
        if name.startswith("v_cmp_"):
            _, _, cmp_name, ty = name.split("_")
            pred = _LANE_CMP[cmp_name]
            a, b = ints[0], ints[1]
            result = 0
            for lane in lanes:
                x, y = a[lane], b[lane]
                if ty == "f32":
                    x, y = _bits_to_f32(x), _bits_to_f32(y)
                elif ty == "i32":
                    x, y = _lane_s32(x), _lane_s32(y)
                if pred(x, y):
                    result |= 1 << lane
            sdst = f.get("sdst")
            if sdst is None or sdst == regs.VCC_LO:
                wf.vcc = result
            else:
                wf.write_scalar64(sdst, result)
            return

        if name == "v_cndmask_b32":
            selector = wf.read_scalar64(f["src2"]) \
                if inst.fmt is Format.VOP3 else wf.vcc
            row = wf.vgprs[f["vdst"]]
            a, b = ints[0], ints[1]
            for lane in lanes:
                row[lane] = b[lane] if (selector >> lane) & 1 else a[lane]
            return

        if name in _LANE_CARRY:
            core = _LANE_CARRY[name]
            if name in ("v_addc_u32", "v_subb_u32"):
                cin_mask = wf.read_scalar64(f["src2"]) \
                    if inst.fmt is Format.VOP3 else wf.vcc
            else:
                cin_mask = 0
            a, b = ints[0], ints[1]
            carry_mask = 0
            results = {}
            for lane in lanes:
                value, carry = core(a[lane], b[lane], (cin_mask >> lane) & 1)
                results[lane] = value
                if carry:
                    carry_mask |= 1 << lane
            sdst = f.get("sdst", regs.VCC_LO) \
                if inst.fmt is Format.VOP3 else regs.VCC_LO
            if sdst == regs.VCC_LO:
                wf.vcc = carry_mask
            else:
                wf.write_scalar64(sdst, carry_mask)
            row = wf.vgprs[f["vdst"]]
            for lane in lanes:
                row[lane] = results[lane]
            return

        if name == "v_mac_f32":
            row = wf.vgprs[f["vdst"]]
            a, b = ints[0], ints[1]
            acc = [int(x) for x in row]
            for lane in lanes:
                row[lane] = _lane_mad_f32(a[lane], b[lane], acc[lane])
            return

        core = _LANE_BIN.get(name)
        if core is not None:
            row = wf.vgprs[f["vdst"]]
            a, b = ints[0], ints[1]
            for lane in lanes:
                row[lane] = core(a[lane], b[lane])
            return
        core = _LANE_UN.get(name)
        if core is not None:
            row = wf.vgprs[f["vdst"]]
            a = ints[0]
            for lane in lanes:
                row[lane] = core(a[lane])
            return
        core = _LANE_TRI.get(name)
        if core is not None:
            row = wf.vgprs[f["vdst"]]
            for lane in lanes:
                row[lane] = core(*(col[lane] for col in ints))
            return
    raise SimulationError("no semantics for vector op {}".format(name))


@contextlib.contextmanager
def lanewise_execution():
    """Route all reference-engine vector execution through the golden
    per-lane model for the duration of the context.

    ``operations.execute`` resolves ``_exec_vector`` through module
    globals at call time, so patching the attribute is enough; the
    prepared-plan engines bypass it, which is why the ``vector`` fuzz
    oracle pins ``engine="reference"`` for the lanewise run.
    """
    from . import operations
    saved = operations._exec_vector
    operations._exec_vector = execute_lanewise
    try:
        yield
    finally:
        operations._exec_vector = saved
