"""Execution tracing: per-instruction event capture for kernel debugging.

Attach an :class:`ExecutionTracer` to a device and every issued
instruction is recorded with its issue cycle, wavefront and executing
unit -- the software equivalent of watching MIAOW2.0's internal cycle
counter and per-stage activity on the FPGA (the paper's debugging
setup of Section 2.2.1, JTAG + memory-mapped state reads).

The tracer is one observer of the :mod:`repro.obs` event stream; it
can share a run with counter sets and trace exporters::

    from repro.cu.trace import ExecutionTracer
    from repro.exec import ExecutionRequest, execute

    tracer = ExecutionTracer()
    execute(ExecutionRequest(benchmark="matrix_add_i32",
                             observers=(tracer,)))
    print(tracer.render(limit=40))
    print(tracer.histogram())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..obs.observer import Observer


@dataclass(frozen=True)
class TraceEvent:
    """One issued instruction."""

    cycle: float
    cu_index: int
    wf_id: int
    address: int
    name: str
    unit: str

    def __str__(self):
        return "[{:>10.1f}] cu{} wf{} 0x{:04x} {:<6} {}".format(
            self.cycle, self.cu_index, self.wf_id, self.address,
            self.unit, self.name)


class ExecutionTracer(Observer):
    """Collects :class:`TraceEvent` records from compute units.

    Bounded: past ``max_events`` records, further instructions are
    counted in ``dropped`` instead of stored, so tracing a runaway
    kernel cannot exhaust memory.  ``render()`` reports the dropped
    tail.
    """

    def __init__(self, max_events=1_000_000):
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    # -- observer hook -------------------------------------------------------

    def on_issue(self, event):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(
            cycle=event.cycle, cu_index=event.cu_index, wf_id=event.wf_id,
            address=event.address, name=event.name, unit=event.unit))

    def __call__(self, cu, wf, inst, cycle):
        """Pre-obs tracer protocol (``cu.tracer`` style); kept so old
        callables and subclasses remain usable as observers."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(
            cycle=cycle, cu_index=cu.cu_index, wf_id=wf.wf_id,
            address=inst.address, name=inst.spec.name,
            unit=inst.spec.unit.value))

    def __len__(self):
        return len(self.events)

    def clear(self):
        self.events = []
        self.dropped = 0

    # -- views ---------------------------------------------------------------

    def for_wavefront(self, wf_id, cu_index=None):
        return [e for e in self.events
                if e.wf_id == wf_id
                and (cu_index is None or e.cu_index == cu_index)]

    def histogram(self):
        """Issue counts per mnemonic, most frequent first."""
        counts = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def unit_utilisation(self):
        """Issue counts per functional unit."""
        counts = {}
        for event in self.events:
            counts[event.unit] = counts.get(event.unit, 0) + 1
        return counts

    def render(self, limit=50):
        """The first ``limit`` events as a readable timeline."""
        shown = self.events[:limit]
        lines = [str(e) for e in shown]
        remaining = len(self.events) - len(shown) + self.dropped
        if remaining > 0:
            lines.append("... {} more events".format(remaining))
        return "\n".join(lines)
