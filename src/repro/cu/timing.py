"""Execution timing model of the MIAOW2.0 compute-unit pipeline.

The simulator is *functional-first with event timing*: instruction
semantics execute eagerly, and this module prices every instruction in
CU cycles.  The model captures the properties the paper's evaluation
hinges on:

* one instruction enters Decode per CU cycle; 64-bit encodings (VOP3,
  memory formats, literal-carrying ops) need **two fetches**
  (Section 2.1.1) and therefore two front-end cycles,
* a vector instruction sweeps the 64 work-items through a 16-lane
  SIMD/SIMF block in ``64/16 = 4`` passes; quarter-rate operations
  (transcendentals, reciprocals) take four times as long,
* adding VALUs (multi-thread parallelism, Section 4.2) multiplies
  vector issue bandwidth because concurrent wavefronts occupy separate
  blocks -- this is exactly the effect Figure 7B measures,
* the in-order wavefront serialises on its own results, so a
  wavefront's next instruction issues only after the previous one's
  occupancy ends; latency is hidden *across* wavefronts, as in the
  real round-robin fetch controller.

The numbers here are per-instruction *occupancy* (initiation-to-free)
of the relevant unit, not end-to-end latency of the 7-stage pipe; the
pipeline depth itself only adds a constant epilogue per wavefront and
is irrelevant to the relative results the paper reports.

Beyond the per-instruction pricing functions, this module is the
**compiled timing layer** shared by every launch engine:

* :class:`TimingTable` -- per-program arrays of front-end cost, unit
  occupancy, pool id, kind and scheduler flags, computed once per
  ``(content_key, CuTimingParams)`` pair and cached in an LRU, so no
  engine re-derives costs per dynamic instruction;
* :class:`UnitPool` / :func:`acquire_slot` -- the one occupancy-pool
  scheduler primitive (previously duplicated between the pipeline and
  the superblock compiler);
* :func:`step_advance` / :class:`FusedBlockTiming` -- per-step and
  closed-form advancement of ``(t, busy)`` over a superblock's static
  step rows.  The closed form is bit-exact (see the class docstring)
  and is what makes the sole-candidate superblock path O(pools)
  instead of O(instructions) in Python arithmetic.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..isa.categories import FunctionalUnit, OpCategory

#: Work-items per wavefront / physical SIMD lanes per VALU block.
VECTOR_PASSES = 64 // 16


@dataclass(frozen=True)
class CuTimingParams:
    """Cycle costs of the compute-unit stages (50 MHz domain)."""

    #: Front-end (fetch+decode+issue) occupancy of a one-word encoding.
    frontend_cycles: int = 1
    #: Extra front-end cycles for a two-fetch (64-bit/literal) encoding.
    second_fetch_cycles: int = 1
    #: SALU occupancy per scalar op.
    salu_cycles: int = 1
    #: Branch unit occupancy.
    branch_cycles: int = 1
    #: VALU passes for a full-rate vector op (64 lanes / 16-wide block).
    valu_passes: int = VECTOR_PASSES
    #: Cycles per pass of a simple integer vector op.
    int_pass_cycles: int = 1
    #: Cycles per pass of an integer multiply (soft DSP cascade).
    int_mul_pass_cycles: int = 3
    #: Cycles per pass of a floating-point add/compare/convert (the
    #: soft FPU's normalise/round pipeline is several cycles deep and
    #: not fully pipelined in the FPGA mapping).
    fp_pass_cycles: int = 2
    #: Cycles per pass of a floating-point multiply/MAC.
    fp_mul_pass_cycles: int = 3
    #: Rate penalty of quarter-rate (trans/div) vector ops.
    trans_multiplier: int = 4
    #: LSU address-calculation occupancy per memory op.
    lsu_cycles: int = 1
    #: Cycles to drain the pipeline when a wavefront ends (epilogue).
    endpgm_cycles: int = 4


DEFAULT_TIMING = CuTimingParams()


def frontend_cost(inst, params=DEFAULT_TIMING):
    """Front-end cycles for an instruction (1 or 2 fetches)."""
    cost = params.frontend_cycles
    if inst.words > 1:
        cost += params.second_fetch_cycles
    return cost


def unit_occupancy(inst, params=DEFAULT_TIMING, transactions=1):
    """Occupancy, in cycles, of the instruction's execution unit.

    ``transactions`` is the access's dynamic memory-transaction count
    (SMRD dwordx2/x4, multi-dword MUBUF): the LSU stays occupied one
    base period per transaction.  It is an explicit argument -- the
    static :class:`TimingTable` stores the base occupancy and every
    issue path applies the multiplier per step.
    """
    unit = inst.spec.unit
    if unit is FunctionalUnit.SALU:
        return params.salu_cycles
    if unit is FunctionalUnit.BRANCH:
        return params.branch_cycles
    if unit is FunctionalUnit.LSU:
        return params.lsu_cycles * max(1, transactions)
    spec = inst.spec
    if spec.dtype.is_float:
        per_pass = (params.fp_mul_pass_cycles
                    if spec.category is OpCategory.MUL
                    else params.fp_pass_cycles)
    else:
        per_pass = (params.int_mul_pass_cycles
                    if spec.category is OpCategory.MUL
                    else params.int_pass_cycles)
    cycles = params.valu_passes * per_pass
    if spec.trans_rate:
        cycles *= params.trans_multiplier
    return cycles


# ---------------------------------------------------------------------------
# Instruction kinds and unit pools.
# ---------------------------------------------------------------------------

#: Scheduler-relevant instruction classes (shared with
#: :mod:`repro.cu.prepared`, which re-exports them).
KIND_ALU = 0
KIND_MEMORY = 1
KIND_ENDPGM = 2
KIND_BARRIER = 3
KIND_WAITCNT = 4

#: Unit-pool ids used by every compiled timing structure (superblock
#: ``steps`` rows, :class:`TimingTable` ``pool`` column).
POOL_SALU = 0
POOL_BRANCH = 1
POOL_SIMD = 2
POOL_SIMF = 3
POOL_LSU = 4

UNIT_POOL_ID = {
    FunctionalUnit.SALU: POOL_SALU,
    FunctionalUnit.BRANCH: POOL_BRANCH,
    FunctionalUnit.SIMD: POOL_SIMD,
    FunctionalUnit.SIMF: POOL_SIMF,
    FunctionalUnit.LSU: POOL_LSU,
}

#: Scheduler flags in :attr:`TimingTable.flags`.
FLAG_BRANCH = 1
FLAG_BARRIER = 2
FLAG_WAITCNT = 4
FLAG_ENDPGM = 8
FLAG_MEMORY = 16


class UnitPool:
    """N interchangeable instances of one functional-unit type.

    The single occupancy-scheduler primitive of the simulator: the
    pipeline's pool dict holds these, and every compiled path operates
    directly on :attr:`busy_until` (through :func:`acquire_slot` or the
    inlined single-instance arithmetic), folding ``busy_cycles`` in per
    block.
    """

    def __init__(self, count):
        self.busy_until = [0.0] * max(0, count)
        self.busy_cycles = 0.0

    def reset(self):
        self.busy_until = [0.0] * len(self.busy_until)
        self.busy_cycles = 0.0

    @property
    def count(self):
        return len(self.busy_until)

    def acquire(self, now, occupancy):
        """Schedule on the earliest-free instance; returns completion."""
        if not self.busy_until:
            raise SimulationError("no instance of this functional unit exists")
        idx = min(range(len(self.busy_until)), key=self.busy_until.__getitem__)
        start = max(now, self.busy_until[idx])
        done = start + occupancy
        self.busy_until[idx] = done
        self.busy_cycles += occupancy
        return done


def acquire_slot(busy, now, occ):
    """Multi-instance pool issue on a raw ``busy_until`` list.

    Exactly :meth:`UnitPool.acquire` minus the ``busy_cycles``
    bookkeeping, which the compiled paths fold in per block (integer
    occupancies, so the deferred sum is order-independent).
    """
    idx = min(range(len(busy)), key=busy.__getitem__)
    start = busy[idx]
    if now > start:
        start = now
    done = start + occ
    busy[idx] = done
    return done


# ---------------------------------------------------------------------------
# Per-program timing tables.
# ---------------------------------------------------------------------------

class TimingTable:
    """Static per-program timing columns, one row per instruction.

    NumPy arrays are the canonical storage (``frontend``,
    ``occupancy``, ``pool``, ``kind``, ``flags``); the matching
    ``fe_costs`` / ``occupancies`` / ``kinds`` tuples hold the same
    rows as plain Python ints for the hot issue loops, where indexing a
    tuple is cheaper than unboxing ``np.int32`` (and cannot leak NumPy
    scalars into cycle arithmetic or JSON payloads).

    ``occupancy`` is the *static* occupancy: the full unit occupancy
    for ALU/branch rows and the base (single-transaction) LSU period
    for memory rows -- the dynamic transaction count multiplies it at
    issue time, explicitly.  Rows for ``s_endpgm`` / ``s_barrier`` /
    ``s_waitcnt`` carry occupancy 0: they never touch a unit pool.
    """

    __slots__ = ("params", "frontend", "occupancy", "pool", "kind",
                 "flags", "fe_costs", "occupancies", "kinds")

    def __init__(self, program, params):
        self.params = params
        instructions = program.instructions
        n = len(instructions)
        frontend = np.zeros(n, dtype=np.int32)
        occupancy = np.zeros(n, dtype=np.int32)
        pool = np.zeros(n, dtype=np.int8)
        kind = np.zeros(n, dtype=np.int8)
        flags = np.zeros(n, dtype=np.uint8)
        for i, inst in enumerate(instructions):
            sp = inst.spec
            frontend[i] = frontend_cost(inst, params)
            pool[i] = UNIT_POOL_ID[sp.unit]
            name = sp.name
            if name == "s_endpgm":
                kind[i] = KIND_ENDPGM
                flags[i] = FLAG_ENDPGM
            elif name == "s_barrier":
                kind[i] = KIND_BARRIER
                flags[i] = FLAG_BARRIER
            elif name == "s_waitcnt":
                kind[i] = KIND_WAITCNT
                flags[i] = FLAG_WAITCNT
            elif sp.is_memory:
                kind[i] = KIND_MEMORY
                flags[i] = FLAG_MEMORY
                occupancy[i] = params.lsu_cycles
            else:
                kind[i] = KIND_ALU
                occupancy[i] = unit_occupancy(inst, params)
                if sp.unit is FunctionalUnit.BRANCH:
                    flags[i] = FLAG_BRANCH
        for arr in (frontend, occupancy, pool, kind, flags):
            arr.setflags(write=False)
        self.frontend = frontend
        self.occupancy = occupancy
        self.pool = pool
        self.kind = kind
        self.flags = flags
        self.fe_costs = tuple(int(c) for c in frontend)
        self.occupancies = tuple(int(c) for c in occupancy)
        self.kinds = tuple(int(c) for c in kind)

    def __len__(self):
        return len(self.fe_costs)


TIMING_TABLE_CACHE_CAPACITY = 128

_table_lock = threading.Lock()
_tables = OrderedDict()
_table_hits = 0
_table_misses = 0


def lookup_timing_table(program, params=DEFAULT_TIMING):
    """Return ``(TimingTable, hit)`` for a program/params pair.

    Keyed ``(content_key, CuTimingParams)`` exactly like the prepared-
    program LRU it sits alongside (``PreparedProgram`` construction
    pulls its plan costs from here, so a service-warmed program shares
    one table across every worker).  Programs without a
    :meth:`content_key` (ad-hoc stand-ins in tests) are built uncached.
    """
    global _table_hits, _table_misses
    key_fn = getattr(program, "content_key", None)
    if key_fn is None:
        return TimingTable(program, params), False
    key = (key_fn(), params)
    with _table_lock:
        table = _tables.get(key)
        if table is not None:
            _tables.move_to_end(key)
            _table_hits += 1
            return table, True
        _table_misses += 1
    table = TimingTable(program, params)
    with _table_lock:
        existing = _tables.get(key)
        if existing is not None:
            _tables.move_to_end(key)
            return existing, True
        _tables[key] = table
        while len(_tables) > TIMING_TABLE_CACHE_CAPACITY:
            _tables.popitem(last=False)
    return table, False


def get_timing_table(program, params=DEFAULT_TIMING):
    """The cached :class:`TimingTable` for a program/params pair."""
    return lookup_timing_table(program, params)[0]


def timing_table_cache_stats():
    with _table_lock:
        return {"hits": _table_hits, "misses": _table_misses,
                "size": len(_tables),
                "capacity": TIMING_TABLE_CACHE_CAPACITY}


def clear_timing_table_cache():
    global _table_hits, _table_misses
    with _table_lock:
        _tables.clear()
        _table_hits = 0
        _table_misses = 0


# ---------------------------------------------------------------------------
# Fused block timing.
# ---------------------------------------------------------------------------

#: Environment knob for the fused closed-form advance: ``0`` disables
#: it (every superblock falls back to :func:`step_advance`), anything
#: else leaves it on.  The bench harness toggles it per measurement via
#: :func:`set_timing_fusion` for the fused-vs-unfused metric.
FUSION_ENV = "REPRO_TIMING_FUSION"

_fusion_enabled = os.environ.get(FUSION_ENV, "1") != "0"


def timing_fusion_enabled():
    """Whether sole-candidate superblocks use the closed-form advance."""
    return _fusion_enabled


def set_timing_fusion(enabled):
    """Toggle timing fusion; returns the previous setting."""
    global _fusion_enabled
    previous = _fusion_enabled
    _fusion_enabled = bool(enabled)
    return previous


def step_advance(steps, start, busy_lists):
    """Advance ``(fe_done, t)`` over static step rows, one per step.

    ``steps`` holds ``(frontend_cost, occupancy, pool_id)`` rows;
    ``busy_lists`` the four ALU-pool ``busy_until`` lists indexed by
    pool id.  This is the per-instruction issue arithmetic of the fast
    loop verbatim (single-instance inline, multi-instance through
    :func:`acquire_slot`) -- the fallback when a block is ineligible
    for the closed form, and the ground truth the property tests hold
    :meth:`FusedBlockTiming.advance` to.
    """
    t = start
    fd = start
    for fe, occ, pid in steps:
        fd = t + fe
        busy = busy_lists[pid]
        if len(busy) == 1:
            b = busy[0]
            t = (fd if fd > b else b) + occ
            busy[0] = t
        else:
            t = acquire_slot(busy, fd, occ)
    return fd, t


class FusedBlockTiming:
    """Closed-form ``(t, busy)`` advance over one superblock's steps.

    Per step the sole-candidate recurrence is::

        fd_i      = t_{i-1} + fe_i
        t_i       = max(fd_i, busy[p_i]) + occ_i
        busy[p_i] = t_i

    Within a straight-line block only the **first** use of each pool
    can stall on residue left by other wavefronts: after step ``j``
    uses pool ``p``, ``busy[p] = t_j <= t_{i-1} <= fd_i`` for every
    later step ``i`` (``t`` is non-decreasing and front-end costs are
    non-negative), so the max resolves to ``fd_i``.  With the prefix
    sums ``S_k = sum_{j<k}(fe_j + occ_j)`` and, per pool ``p`` first
    used at step ``i_p``, ``A_p = S_{i_p} + fe_{i_p}``, induction gives

        t_k = S_{k+1} + max(start, max_{p: i_p <= k}(busy0[p] - A_p))

    so the whole block needs one running max over at most four pool
    residues instead of per-instruction arithmetic.  The final
    ``fe_done``, ``t`` and each pool's ``busy_until`` come from the
    same expression evaluated at the right steps.

    Bit-exactness: every board-timeline value is a multiple of the CU
    clock granularity (0.25 cycles at the 1:4 memory clock ratio) far
    below 2**50, so adding the integer prefix sums to such doubles and
    subtracting ``A_p`` are exact float operations, and ``max`` is
    always exact -- the reassociated closed form therefore produces
    the *identical* doubles the sequential recurrence produces, which
    the superblock/fuzz oracles and the Hypothesis property tests
    enforce.

    Eligibility: exact only when every pool the block uses has a
    single instance (multi-instance ``acquire_slot`` picks the
    earliest-free instance per step, which is stateful); ``build``
    returns ``None`` otherwise and the engine falls back to
    :func:`step_advance`.
    """

    __slots__ = ("order", "total", "fe_tail", "tail_pools", "updates")

    def __init__(self, order, total, fe_tail, tail_pools, updates):
        #: ``(pool_id, A_p)`` per used pool, in first-use order.
        self.order = order
        #: ``S_n``: the block's total front-end + occupancy sum.
        self.total = total
        #: ``S_{n-1} + fe_{n-1}``: fe_done's static component.
        self.fe_tail = fe_tail
        #: Number of pools first used before the last step.
        self.tail_pools = tail_pools
        #: ``(pool_id, S_{j_p+1}, m_p)`` per used pool: the static
        #: component of its final busy time and the number of pools
        #: first used by its last-use step ``j_p``.
        self.updates = updates

    @staticmethod
    def build(steps, pool_counts):
        """Compile steps into a fused advance, or None if ineligible.

        ``pool_counts`` maps pool id -> instance count for the four
        ALU pools (index 0..3).
        """
        first, last = {}, {}
        prefix = [0]
        for k, (fe, occ, pid) in enumerate(steps):
            if pool_counts[pid] != 1:
                return None
            first.setdefault(pid, k)
            last[pid] = k
            prefix.append(prefix[-1] + fe + occ)
        n = len(steps)
        order = sorted(first, key=first.get)
        firsts = sorted(first.values())
        return FusedBlockTiming(
            order=tuple((pid, prefix[first[pid]] + steps[first[pid]][0])
                        for pid in order),
            total=prefix[n],
            fe_tail=prefix[n - 1] + steps[n - 1][0],
            tail_pools=bisect_right(firsts, n - 2),
            updates=tuple((pid, prefix[last[pid] + 1],
                           bisect_right(firsts, last[pid]))
                          for pid in order),
        )

    def advance(self, start, busy_lists):
        """One fused block issue; returns ``(fe_done, t)``.

        Mutates ``busy_lists`` exactly like :func:`step_advance`.
        """
        r = start
        rs = [start]
        for pid, offset in self.order:
            d = busy_lists[pid][0] - offset
            if d > r:
                r = d
            rs.append(r)
        for pid, static_busy, m in self.updates:
            busy_lists[pid][0] = static_busy + rs[m]
        return self.fe_tail + rs[self.tail_pools], self.total + rs[-1]
