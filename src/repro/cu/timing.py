"""Execution timing model of the MIAOW2.0 compute-unit pipeline.

The simulator is *functional-first with event timing*: instruction
semantics execute eagerly, and this module prices every instruction in
CU cycles.  The model captures the properties the paper's evaluation
hinges on:

* one instruction enters Decode per CU cycle; 64-bit encodings (VOP3,
  memory formats, literal-carrying ops) need **two fetches**
  (Section 2.1.1) and therefore two front-end cycles,
* a vector instruction sweeps the 64 work-items through a 16-lane
  SIMD/SIMF block in ``64/16 = 4`` passes; quarter-rate operations
  (transcendentals, reciprocals) take four times as long,
* adding VALUs (multi-thread parallelism, Section 4.2) multiplies
  vector issue bandwidth because concurrent wavefronts occupy separate
  blocks -- this is exactly the effect Figure 7B measures,
* the in-order wavefront serialises on its own results, so a
  wavefront's next instruction issues only after the previous one's
  occupancy ends; latency is hidden *across* wavefronts, as in the
  real round-robin fetch controller.

The numbers here are per-instruction *occupancy* (initiation-to-free)
of the relevant unit, not end-to-end latency of the 7-stage pipe; the
pipeline depth itself only adds a constant epilogue per wavefront and
is irrelevant to the relative results the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.categories import FunctionalUnit, OpCategory

#: Work-items per wavefront / physical SIMD lanes per VALU block.
VECTOR_PASSES = 64 // 16


@dataclass(frozen=True)
class CuTimingParams:
    """Cycle costs of the compute-unit stages (50 MHz domain)."""

    #: Front-end (fetch+decode+issue) occupancy of a one-word encoding.
    frontend_cycles: int = 1
    #: Extra front-end cycles for a two-fetch (64-bit/literal) encoding.
    second_fetch_cycles: int = 1
    #: SALU occupancy per scalar op.
    salu_cycles: int = 1
    #: Branch unit occupancy.
    branch_cycles: int = 1
    #: VALU passes for a full-rate vector op (64 lanes / 16-wide block).
    valu_passes: int = VECTOR_PASSES
    #: Cycles per pass of a simple integer vector op.
    int_pass_cycles: int = 1
    #: Cycles per pass of an integer multiply (soft DSP cascade).
    int_mul_pass_cycles: int = 3
    #: Cycles per pass of a floating-point add/compare/convert (the
    #: soft FPU's normalise/round pipeline is several cycles deep and
    #: not fully pipelined in the FPGA mapping).
    fp_pass_cycles: int = 2
    #: Cycles per pass of a floating-point multiply/MAC.
    fp_mul_pass_cycles: int = 3
    #: Rate penalty of quarter-rate (trans/div) vector ops.
    trans_multiplier: int = 4
    #: LSU address-calculation occupancy per memory op.
    lsu_cycles: int = 1
    #: Cycles to drain the pipeline when a wavefront ends (epilogue).
    endpgm_cycles: int = 4


DEFAULT_TIMING = CuTimingParams()


def frontend_cost(inst, params=DEFAULT_TIMING):
    """Front-end cycles for an instruction (1 or 2 fetches)."""
    cost = params.frontend_cycles
    if inst.words > 1:
        cost += params.second_fetch_cycles
    return cost


def unit_occupancy(inst, params=DEFAULT_TIMING):
    """Occupancy, in cycles, of the instruction's execution unit."""
    unit = inst.spec.unit
    if unit is FunctionalUnit.SALU:
        return params.salu_cycles
    if unit is FunctionalUnit.BRANCH:
        return params.branch_cycles
    if unit is FunctionalUnit.LSU:
        return params.lsu_cycles * max(1, getattr(inst, "transactions", 1))
    spec = inst.spec
    if spec.dtype.is_float:
        per_pass = (params.fp_mul_pass_cycles
                    if spec.category is OpCategory.MUL
                    else params.fp_pass_cycles)
    else:
        per_pass = (params.int_mul_pass_cycles
                    if spec.category is OpCategory.MUL
                    else params.int_pass_cycles)
    cycles = params.valu_passes * per_pass
    if spec.trans_rate:
        cycles *= params.trans_multiplier
    return cycles
