"""Superblock compiler: fused executors for straight-line ALU runs.

The prepared-plan fast loop (:meth:`ComputeUnit._run_fast`) still pays
per-instruction Python dispatch -- a scheduler pick, a dict lookup, a
closure call -- for every issue.  For ALU-dense kernels that dispatch
is the dominant cost; the actual NumPy work per VALU op is a few
microseconds.

This module partitions a prepared program into **superblocks**:
maximal straight-line runs of *specialized* ALU plans that cannot
change the wavefront scheduler's state.  Each run compiles into two
halves that the engine recombines:

* **semantics** -- one generated-and-``exec()``'d Python function
  (``sem_all``, plus the range-guarded ``sem`` for partial gang
  flushes) performing exactly the register effects of each plan's
  bound executor in program order, inlined where the operand shapes
  are provably reproducible (scalar ALU as pure Python ints, VALU
  through the same ``VBIN/VUN/VTRI`` cores and the same masked
  ``np.copyto`` write) and a direct closure call otherwise;
* **timing** -- the block's static ``steps`` rows, advanced either in
  closed form (``fused``, a
  :class:`~repro.cu.timing.FusedBlockTiming` -- O(pools) per block)
  or step by step (:func:`~repro.cu.timing.step_advance`, the
  fallback when a used pool has several instances or fusion is
  disabled).  Block timing is data-independent, so the two halves
  commute.

Block-formation rules (also documented in ``docs/execution.md``):

* only ``KIND_ALU`` plans whose executor is a proven specialization;
* never across branches (taken or not), barriers, ``s_waitcnt``,
  ``s_endpgm`` or memory operations -- those interact with the
  scheduler, the barrier set or the memory timing model;
* never across an instruction that can write EXEC, M0 or an
  out-of-file scalar destination (``saveexec``, ``sdst`` above the
  plain SGPR file other than VCC);
* a block never spans a branch *target*: jumping into the middle of a
  block falls back to the per-instruction plans, which exist at every
  address regardless.

Exactness: a fused block runs in two regimes.  When the picked
wavefront is the *sole schedulable candidate*, no other wavefront can
interleave; within the block nothing changes liveness, barrier state
or EXEC, so the per-instruction issue chain collapses to
``start_{i+1} = done_i`` -- one ``sem_all`` call replays the register
effects while the block's static timing advances in closed form
(``fused``) or per step (``steps``), bit-identically (see
:class:`repro.cu.timing.FusedBlockTiming` for the exactness
argument).  When *several* candidates all sit at block
heads, the fast loop enters a **gang**: it replays the scheduler's
per-instruction picks (same rotation cursor, same strict-less-than
earliest-ready comparison) over each block's static cost triples
(``steps``) -- block timing is data-independent, so no register state
is needed -- and exits, with per-wavefront partial progress, at the
first pick that would leave a block.  Register effects are then
flushed one wavefront at a time through the block's range-guarded
semantics function (``sem``): ALU instructions of different
wavefronts touch disjoint state (own SGPRs/VGPRs/VCC/SCC; EXEC
writers are excluded), so any flush order reproduces the interleaved
reference state exactly.  In both regimes the arithmetic runs on the
same values as the reference loop (including unit-pool residue left
by other wavefronts), making cycles, stats and register state
bit-identical -- the ``superblock`` oracle in :mod:`repro.verify`
enforces this against both the fast and reference engines.

One deliberate asymmetry: instructions whose executor could raise
(64-bit scalar operands at the top of the SGPR file) are excluded
from blocks, so every simulation error still surfaces at its exact
per-instruction issue slot.

Debugging: set ``REPRO_SUPERBLOCK_DUMP=<dir>`` to write each generated
block's source to ``<dir>`` as it is compiled.
"""

from __future__ import annotations

import os

import numpy as np

from ..isa import registers as regs
from ..isa.formats import Format
from . import operations, vector
from .prepared import _BRANCH_TAKEN, _inline_constant, KIND_ALU
from .timing import UNIT_POOL_ID, FusedBlockTiming
from .wavefront import FULL_EXEC, MASK32, MASK64

#: Minimum run length worth fusing: a one-instruction block would just
#: replace one closure call with another.
MIN_BLOCK = 2

_DUMP_ENV = "REPRO_SUPERBLOCK_DUMP"


class Superblock:
    """One compiled straight-line run.

    ``sem_all`` replays the whole block's register effects (the
    sole-candidate path); ``sem`` is its range-guarded variant used to
    flush partial gang progress; ``steps`` holds the static
    ``(frontend_cost, occupancy, pool_id)`` triple per instruction
    (pool ids from :data:`repro.cu.timing.UNIT_POOL_ID`: 0 SALU,
    1 BRANCH, 2 SIMD, 3 SIMF) consumed by both
    :func:`~repro.cu.timing.step_advance` and the gang timing loop;
    ``fused`` is the closed-form
    :class:`~repro.cu.timing.FusedBlockTiming` over those steps, or
    ``None`` when a used pool has several instances; ``addrs[k]`` is
    the address of instruction ``k`` (``addrs[count]`` is ``end_pc``);
    ``cum_busy`` maps each functional unit to its cumulative occupancy
    prefix sums for partial-progress accounting.
    """

    __slots__ = ("head", "end_pc", "count", "indices", "last_occ",
                 "busy_totals", "sem_all", "sem", "steps", "fused",
                 "addrs", "cum_busy", "source")

    def __init__(self, head, end_pc, count, indices, last_occ,
                 busy_totals, sem_all, sem, steps, fused, addrs, cum_busy,
                 source):
        self.head = head
        self.end_pc = end_pc
        self.count = count
        self.indices = indices
        self.last_occ = last_occ
        self.busy_totals = busy_totals
        self.sem_all = sem_all
        self.sem = sem
        self.steps = steps
        self.fused = fused
        self.addrs = addrs
        self.cum_busy = cum_busy
        self.source = source


# ---------------------------------------------------------------------------
# Runtime helpers shared by every generated function.
# ---------------------------------------------------------------------------

def _wv(row, values, mask):
    """Masked VGPR write -- exactly :meth:`Wavefront.write_vgpr`.

    ``mask is None`` means "EXEC was full at block entry" (EXEC cannot
    change inside a block), mirroring the full-EXEC fast path of
    :meth:`Wavefront.write_vgpr`.
    """
    if mask is None:
        row[...] = np.asarray(values, dtype=np.uint32)
        return
    np.copyto(row, np.asarray(values, dtype=np.uint32), where=mask)


# ---------------------------------------------------------------------------
# Eligibility and partitioning.
# ---------------------------------------------------------------------------

def _fusable(plan):
    """Can this plan live inside a superblock?"""
    if plan.kind != KIND_ALU or not plan.specialized:
        return False
    name = plan.name
    if name in _BRANCH_TAKEN or "saveexec" in name:
        return False
    fields = plan.inst.fields
    sdst = fields.get("sdst")
    if sdst is not None and sdst > regs.SGPR_LAST and sdst != regs.VCC_LO:
        # Conservative: EXEC/M0/VCC_HI (or any special) destinations
        # could perturb scheduler-visible state.
        return False
    for key in ("ssrc0", "ssrc1", "src0", "src1", "src2", "sdst"):
        if fields.get(key) == regs.SGPR_LAST:
            # A 64-bit operand starting at the top of the SGPR file
            # raises in the reference; keep such plans out of blocks so
            # the error surfaces at its exact per-instruction slot.
            return False
    return True


def _branch_targets(plans):
    targets = set()
    for plan in plans:
        if plan.name in _BRANCH_TAKEN:
            simm = plan.inst.fields["simm16"]
            if simm >= 0x8000:
                simm -= 0x10000
            targets.add(plan.inst.address + 4 + 4 * simm)
    return targets


def _partition(plans):
    """Maximal fusable runs, split at branch targets."""
    targets = _branch_targets(plans)
    runs, current = [], []
    for plan in plans:
        if current and plan.address in targets:
            runs.append(current)
            current = []
        if _fusable(plan):
            current.append(plan)
        else:
            if current:
                runs.append(current)
            current = []
    if current:
        runs.append(current)
    return [run for run in runs if len(run) >= MIN_BLOCK]


# ---------------------------------------------------------------------------
# Source emission.
# ---------------------------------------------------------------------------

_M32 = str(MASK32)


def _scalar_src(code, literal):
    """Inline expression for a scalar source, or None.

    Mirrors :func:`prepared._scalar_reader`'s provable cases only.
    """
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        return "int(s[%d])" % code, True
    if code == regs.LITERAL and literal is not None:
        return str(literal & MASK32), False
    constant = _inline_constant(code)
    if constant is not None:
        return str(constant), False
    return None


def _scalar64_src(code, uses):
    """Inline expression for a 64-bit scalar source, or None.

    Mirrors :meth:`Wavefront.read_scalar64`'s provable cases only --
    the raising cases fall back to the per-instruction closure so the
    error surfaces at its exact issue slot.
    """
    if code == regs.VCC_LO:
        return "wf.vcc"
    if code == regs.EXEC_LO:
        return "wf.exec_mask"
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST - 1:
        uses.add("s")
        return "(int(s[%d]) | (int(s[%d]) << 32))" % (code, code + 1)
    if code == regs.CONST_ZERO:
        return "0"
    if regs.INT_POS_FIRST <= code <= regs.INT_NEG_LAST:
        return str(regs.inline_value(code) & MASK64)
    return None


def _mask_dst_lines(sdst, uses):
    """Source lines storing a 64-bit lane mask ``_m``, or None.

    ``sdst is None`` (VOP2/VOPC encodings) and ``VCC_LO`` both target
    VCC; an in-file SGPR pair is written exactly like
    :meth:`Wavefront.write_scalar64`.
    """
    if sdst is None or sdst == regs.VCC_LO:
        return ["wf.vcc = _m"]
    if regs.SGPR_FIRST <= sdst <= regs.SGPR_LAST - 1:
        uses.add("s")
        return ["s[%d] = _m & %s" % (sdst, _M32),
                "s[%d] = _m >> 32" % (sdst + 1)]
    return None


def _vector_src(code, literal, ns, tag):
    """Inline expression for a vector source, or None.

    Mirrors :func:`prepared._vector_reader`'s provable cases only;
    constants become prebuilt read-only arrays in the namespace.
    """
    if code >= regs.VGPR_BASE:
        return "v[%d]" % (code - regs.VGPR_BASE), "v"
    constant = _inline_constant(code)
    if code == regs.LITERAL and literal is not None:
        constant = literal & MASK32
    if constant is not None:
        arr = np.full(64, constant, dtype=np.uint32)
        arr.setflags(write=False)
        ns[tag] = arr
        return tag, None
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        return "_full(64, s[%d], _u32d)" % code, "s"
    return None


def _emit_salu(plan, k, ns, uses):
    """Inline source lines for a scalar-ALU plan, or None."""
    inst = plan.inst
    sp, f, fmt = inst.spec, inst.fields, inst.fmt
    name = sp.name

    if fmt is Format.SOPP:
        if name == "s_nop":
            return []
        return None

    if fmt is Format.SOPC:
        parts = name.split("_")
        if len(parts) != 4:
            return None
        cmp_fn = operations._SCMP.get(parts[2])
        if cmp_fn is None:
            return None
        a = _scalar_src(f["ssrc0"], inst.literal)
        b = _scalar_src(f["ssrc1"], inst.literal)
        if a is None or b is None:
            return None
        if a[1] or b[1]:
            uses.add("s")
        ns["_i%d" % k] = cmp_fn
        if parts[3] == "i32":
            return ["wf.scc = int(_i%d(_s32(%s), _s32(%s)))"
                    % (k, a[0], b[0])]
        return ["wf.scc = int(_i%d(%s, %s))" % (k, a[0], b[0])]

    if fmt is Format.SOPK:
        sdst = f["sdst"]
        if not (regs.SGPR_FIRST <= sdst <= regs.SGPR_LAST):
            return None
        uses.add("s")
        simm = f["simm16"]
        if simm >= 0x8000:
            simm -= 0x10000
        if name == "s_movk_i32":
            return ["s[%d] = %d" % (sdst, simm & MASK32)]
        if name == "s_addk_i32":
            return ["_r, _c = _add32(int(s[%d]), %d)" % (sdst, simm & MASK32),
                    "s[%d] = _r & %s" % (sdst, _M32),
                    "wf.scc = _c"]
        if name == "s_mulk_i32":
            return ["s[%d] = (_s32(int(s[%d])) * %d) & %s"
                    % (sdst, sdst, simm, _M32)]
        return None

    if fmt is Format.SOP2 and not sp.op64:
        impl = operations.SOP2_IMPL.get(name)
        if impl is None:
            return None
        sdst = f["sdst"]
        if not (regs.SGPR_FIRST <= sdst <= regs.SGPR_LAST):
            return None
        a = _scalar_src(f["ssrc0"], inst.literal)
        b = _scalar_src(f["ssrc1"], inst.literal)
        if a is None or b is None:
            return None
        uses.add("s")
        ns["_i%d" % k] = impl
        lines = ["_r, _c = _i%d(%s, %s, wf.scc)" % (k, a[0], b[0]),
                 "s[%d] = _r & %s" % (sdst, _M32)]
        if sp.writes_scc:
            lines.append("if _c is not None: wf.scc = _c")
        return lines

    if fmt is Format.SOP1:
        impl = operations.SOP1_IMPL.get(name)
        if impl is None:
            return None
        sdst = f["sdst"]
        if not (regs.SGPR_FIRST <= sdst <= regs.SGPR_LAST):
            return None
        a = _scalar_src(f["ssrc0"], inst.literal)
        if a is None:
            return None
        uses.add("s")
        ns["_i%d" % k] = impl
        lines = ["_r, _c = _i%d(%s)" % (k, a[0]),
                 "s[%d] = _r & %s" % (sdst, _M32)]
        if sp.writes_scc:
            lines.append("if _c is not None: wf.scc = _c")
        return lines

    return None


def _emit_vector(plan, k, ns, uses):
    """Inline source lines for a vector-ALU plan, or None.

    Every vectorized class is emitted in array form -- plain
    VBIN/VUN/VTRI cores, compares, cndmask, mac and the carry chains
    (:data:`repro.cu.vector.CARRY_OPS`) -- one NumPy expression per
    instruction.  Unprovable operand shapes fall back to the plan's
    bound closure.
    """
    inst = plan.inst
    sp, f, fmt = inst.spec, inst.fields, inst.fmt
    name = sp.name

    def src(code, tag):
        got = _vector_src(code, inst.literal, ns, tag)
        if got is None:
            return None
        expr, used = got
        if used:
            uses.add(used)
        return expr

    a = src(f["src0"], "_c%da" % k)
    if a is None:
        return None
    if fmt in (Format.VOP2, Format.VOPC):
        b = "v[%d]" % f["vsrc1"]
        uses.add("v")
    elif fmt is Format.VOP3:
        b = src(f["src1"], "_c%db" % k)
    else:
        b = None

    if name.startswith("v_cmp_"):
        if b is None:
            return None
        ty = name.rsplit("_", 1)[1]
        cmp_fn = vector.VCMP_IMPL.get(name.split("_")[2])
        if cmp_fn is None:
            return None
        dst = _mask_dst_lines(
            f.get("sdst") if fmt is Format.VOP3 else None, uses)
        if dst is None:
            return None
        if ty == "f32":
            a, b = "_fv(%s)" % a, "_fv(%s)" % b
        elif ty == "i32":
            a, b = "_sv(%s)" % a, "_sv(%s)" % b
        ns["_p%d" % k] = cmp_fn
        uses.add("lm")
        return ["_m = _mfb(_p%d(%s, %s), lm)" % (k, a, b)] + dst

    if name == "v_cndmask_b32":
        if b is None:
            return None
        sel = ("wf.vcc" if fmt is not Format.VOP3
               else _scalar64_src(f["src2"], uses))
        if sel is None:
            return None
        uses.add("v")
        uses.add("lm")
        return ["_wv(v[%d], _where(_bfm(%s), %s, %s), lm)"
                % (f["vdst"], sel, b, a)]

    if name in vector.CARRY_OPS:
        if b is None:
            return None
        if name in ("v_addc_u32", "v_subb_u32"):
            cin = ("wf.vcc" if fmt is not Format.VOP3
                   else _scalar64_src(f["src2"], uses))
            if cin is None:
                return None
            args = "%s, %s, _bfm(%s)" % (a, b, cin)
        elif name == "v_subrev_i32":
            args = "%s, %s" % (b, a)
        else:
            args = "%s, %s" % (a, b)
        core = "_awc" if name in ("v_add_i32", "v_addc_u32") else "_swb"
        dst = _mask_dst_lines(
            f.get("sdst") if fmt is Format.VOP3 else None, uses)
        if dst is None:
            return None
        uses.add("v")
        uses.add("lm")
        return (["_r, _cb = %s(%s)" % (core, args),
                 "_m = _mfb(_cb, lm)"]
                + dst
                + ["_wv(v[%d], _r, lm)" % f["vdst"]])

    if name == "v_mac_f32":
        if b is None:
            return None
        uses.add("v")
        uses.add("lm")
        return ["_wv(v[%d], _from_f(_fv(%s) * _fv(%s) + _fv(v[%d])), lm)"
                % (f["vdst"], a, b, f["vdst"])]

    impl = operations.VBIN_IMPL.get(name)
    if impl is not None:
        if b is None:
            return None
        args = "%s, %s" % (a, b)
    else:
        impl = operations.VUN_IMPL.get(name)
        if impl is not None:
            args = a
        else:
            impl = operations.VTRI_IMPL.get(name)
            if impl is None or b is None or fmt is not Format.VOP3:
                return None
            if sp.num_srcs >= 3:
                c = src(f["src2"], "_c%dc" % k)
                if c is None:
                    return None
                args = "%s, %s, %s" % (a, b, c)
            else:
                args = "%s, %s" % (a, b)
    ns["_i%d" % k] = impl
    uses.add("v")
    uses.add("lm")
    return ["_wv(v[%d], _i%d(%s), lm)" % (f["vdst"], k, args)]


_SCALAR_FMTS = (Format.SOP2, Format.SOPK, Format.SOP1, Format.SOPC,
                Format.SOPP)
_VECTOR_FMTS = (Format.VOP1, Format.VOP2, Format.VOPC, Format.VOP3)

def _compile_block(run, num_simd, num_simf):
    """Emit, compile and wrap one run into a :class:`Superblock`.

    The generated source is semantics-only (timing advances through
    the block's static ``steps`` / ``fused`` structures, shared with
    the engine); ``_superblock_sem_all`` replays the whole block and
    ``_superblock_sem`` the gang's ``[k0, k1)`` sub-range.
    """
    ns = {
        "_wv": _wv, "_full": np.full, "_u32d": np.uint32,
        "_s32": operations._s32, "_add32": operations._add_i32,
        "_FE": FULL_EXEC, "_where": np.where,
        "_fv": vector._fv, "_sv": vector._sv, "_from_f": vector._from_f,
        "_mfb": vector.mask_from_bools, "_bfm": vector.bools_from_mask,
        "_awc": vector.add_with_carry, "_swb": vector.sub_with_borrow,
    }
    uses = set()
    body = []
    sem_body = []
    busy_totals = {}
    steps = []
    for k, plan in enumerate(run):
        occ = plan.occupancy
        busy_totals[plan.unit] = busy_totals.get(plan.unit, 0) + occ
        steps.append((plan.fe_cost, occ, UNIT_POOL_ID[plan.unit]))
        try:
            if plan.inst.fmt in _SCALAR_FMTS:
                sem = _emit_salu(plan, k, ns, uses)
            elif plan.inst.fmt in _VECTOR_FMTS:
                sem = _emit_vector(plan, k, ns, uses)
            else:
                sem = None
        except Exception:
            sem = None
        if sem is None:
            ns["_f%d" % k] = plan.exec_fn
            sem = ["_f%d(wf)" % k]
        body.extend(sem)
        if sem:
            sem_body.append("if k0 <= %d < k1:" % k)
            sem_body.extend("    %s" % line for line in sem)
    if not body:
        body.append("pass")
    if not sem_body:
        sem_body.append("pass")

    prelude = []
    if "s" in uses:
        prelude.append("s = wf.sgprs")
    if "v" in uses:
        prelude.append("v = wf.vgprs")
    if "lm" in uses:
        # EXEC cannot change inside a block; None means "all lanes"
        # to both _wv and the mask builders, skipping the unpack.
        prelude.append(
            "lm = None if wf.exec_mask == _FE else wf.active_lane_mask()")

    head = run[0].address
    src = (
        "def _superblock_sem_all(wf):\n"
        + "".join("    %s\n" % line for line in prelude + body)
        + "\n"
        + "def _superblock_sem(wf, k0, k1):\n"
        + "".join("    %s\n" % line for line in prelude + sem_body)
    )
    code = compile(src, "<superblock@0x%x>" % head, "exec")
    exec(code, ns)
    last = run[-1]
    cum_busy = []
    for unit in sorted(busy_totals, key=lambda u: u.value):
        cum, running = [0], 0
        for plan in run:
            if plan.unit is unit:
                running += plan.occupancy
            cum.append(running)
        cum_busy.append((unit, tuple(cum)))
    steps = tuple(steps)
    return Superblock(
        head=head,
        end_pc=last.address + last.pc_step,
        count=len(run),
        indices=tuple(plan.index for plan in run),
        last_occ=last.occupancy,
        busy_totals=tuple(sorted(busy_totals.items(),
                                 key=lambda kv: kv[0].value)),
        sem_all=ns["_superblock_sem_all"],
        sem=ns["_superblock_sem"],
        steps=steps,
        fused=FusedBlockTiming.build(steps, (1, 1, num_simd, num_simf)),
        addrs=tuple(plan.address for plan in run)
        + (last.address + last.pc_step,),
        cum_busy=tuple(cum_busy),
        source=src,
    )


def _dump(prepared, block, num_simd, num_simf, dump_dir):
    name = getattr(prepared.program, "name", None) or "program"
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_" for ch in name)
    path = os.path.join(
        dump_dir, "%s_0x%x_simd%dx%d.py" % (safe, block.head,
                                            num_simd, num_simf))
    with open(path, "w") as fh:
        fh.write("# superblock head=0x%x count=%d end_pc=0x%x\n%s"
                 % (block.head, block.count, block.end_pc, block.source))


def build_superblocks(prepared, num_simd, num_simf):
    """Compile every fusable run of a prepared program.

    Returns ``{address: (Superblock, offset)}`` covering *every*
    instruction address inside a block -- the head at offset 0 plus
    each interior position, so a gang can pick up a wavefront mid-run
    (after a partial flush) exactly where it stopped.  Possibly empty.
    Called once per (program, CU shape) by
    :meth:`PreparedProgram.superblocks`, which caches the result.
    """
    dump_dir = os.environ.get(_DUMP_ENV)
    blocks = {}
    for run in _partition(prepared.plans):
        block = _compile_block(run, num_simd, num_simf)
        for k in range(block.count):
            blocks[block.addrs[k]] = (block, k)
        if dump_dir:
            _dump(prepared, block, num_simd, num_simf, dump_dir)
    return blocks
