"""The MIAOW2.0 compute-unit pipeline simulator.

Implements the seven-stage pipeline of Figure 2 as an event-timed
model: Fetch (round-robin over resident wavefronts), Decode (classify
+ register translation, one instruction per cycle, two fetches for
64-bit encodings), Issue (scoreboard: in-order per wavefront,
barrier/halt handled immediately), Schedule/Execute (SALU, SIMD and
SIMF pools, LSU) and Write-back.

Trimming enforcement lives here: a :class:`ComputeUnit` built from a
trimmed architecture carries the surviving instruction set and raises
:class:`~repro.errors.TrimmedInstructionError` if a kernel executes
anything that was scratched -- the safety property that makes
"removal of unused resources does not affect execution" (Section 3.2)
checkable rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError, TrimmedInstructionError
from ..isa.categories import FunctionalUnit
from ..isa.registers import MAX_WAVEFRONTS
from ..obs.events import InstructionIssue, Span, Stall, WavefrontStep
from . import lsu, operations
from .prepared import get_prepared
from .timing import (KIND_ALU, KIND_ENDPGM, KIND_MEMORY, KIND_WAITCNT,
                     DEFAULT_TIMING, UnitPool, acquire_slot,
                     get_timing_table, step_advance, timing_fusion_enabled)

_WAITCNT_VM_MASK = 0xF
_WAITCNT_LGKM_SHIFT = 8
_WAITCNT_LGKM_MASK = 0x1F


@dataclass
class CuRunStats:
    """Cycle and instruction accounting for one workgroup execution.

    ``cycles`` is the workgroup's elapsed execution time; a merged
    stats object (one kernel launch) therefore holds the *sum* of
    per-workgroup busy cycles, which exceeds the launch makespan when
    workgroups overlap across compute units.
    """

    cycles: float = 0.0
    instructions: int = 0
    per_unit: dict = field(default_factory=dict)
    per_name: dict = field(default_factory=dict)
    memory_accesses: int = 0
    wavefronts: int = 0

    def merge(self, other):
        self.cycles += other.cycles
        self.instructions += other.instructions
        self.memory_accesses += other.memory_accesses
        self.wavefronts += other.wavefronts
        for key, value in other.per_unit.items():
            self.per_unit[key] = self.per_unit.get(key, 0) + value
        for key, value in other.per_name.items():
            self.per_name[key] = self.per_name.get(key, 0) + value


class ComputeUnit:
    """One MIAOW2.0 compute unit.

    Parameters
    ----------
    memory:
        The shared :class:`~repro.mem.system.MemorySystem`.
    cu_index:
        Index into the memory system's per-CU prefetch buffers.
    num_simd / num_simf:
        Integer and floating-point VALU block counts.  The baseline CU
        has one of each; trimming may remove the SIMF entirely and the
        parallelism planner may replicate either (Figure 6's last two
        columns).
    supported:
        ``None`` for the full 156-instruction decode, or the surviving
        mnemonic set of a trimmed architecture.
    max_instructions:
        Safety valve against runaway kernels.
    """

    def __init__(self, memory, cu_index=0, num_simd=1, num_simf=1,
                 supported=None, timing=DEFAULT_TIMING,
                 max_wavefronts=MAX_WAVEFRONTS, max_instructions=200_000_000):
        self.memory = memory
        self.cu_index = cu_index
        self.supported = frozenset(supported) if supported is not None else None
        self.timing = timing
        self.max_wavefronts = max_wavefronts
        self.max_instructions = max_instructions
        self.pools = {
            FunctionalUnit.SALU: UnitPool(1),
            FunctionalUnit.BRANCH: UnitPool(1),
            FunctionalUnit.SIMD: UnitPool(num_simd),
            FunctionalUnit.SIMF: UnitPool(num_simf),
            FunctionalUnit.LSU: UnitPool(1),
        }
        self.num_simd = num_simd
        self.num_simf = num_simf
        #: Observation slot: ``None`` (the common case -- every hook
        #: point is a single ``is not None`` guard, so unobserved runs
        #: pay nothing) or the board's
        #: :class:`~repro.obs.observer.ObserverHub`, installed by
        #: ``SoftGpu.attach`` / ``Gpu.attach``.
        self.obs = None

    def reset_occupancy(self):
        """Clear functional-unit occupancy (absolute timeline times).

        Must accompany any board-timeline rewind: ``busy_until`` holds
        absolute cycle numbers, so a reset timeline would otherwise see
        phantom occupancy from the previous run.
        """
        for pool in self.pools.values():
            pool.reset()

    def rebase_occupancy(self):
        """Zero absolute busy times but keep cumulative ``busy_cycles``.

        Used by the parallel launch engine, which runs each workgroup
        at local time 0 and re-times the launch afterwards: occupancy
        must not leak between workgroups, while the cumulative
        utilisation counters keep accounting across the launch.
        """
        for pool in self.pools.values():
            pool.busy_until = [0.0] * len(pool.busy_until)

    # ------------------------------------------------------------------

    def _check_supported(self, inst):
        sp = inst.spec
        if not sp.implemented:
            raise TrimmedInstructionError(
                sp.name, "not implemented in MIAOW2.0 (characterisation superset)"
            )
        if self.supported is not None and sp.name not in self.supported:
            raise TrimmedInstructionError(sp.name, sp.unit.value)
        if sp.unit is FunctionalUnit.SIMF and self.num_simf == 0:
            raise TrimmedInstructionError(sp.name, "SIMF removed")
        if sp.unit is FunctionalUnit.SIMD and self.num_simd == 0:
            raise TrimmedInstructionError(sp.name, "SIMD removed")

    @staticmethod
    def _waitcnt_target(wf, simm16, now):
        """Earliest time the waitcnt's count conditions are satisfied."""

        def settle(outstanding, allowed):
            if len(outstanding) <= allowed:
                return 0.0
            ordered = sorted(outstanding)
            return ordered[len(outstanding) - allowed - 1]

        vm_allowed = simm16 & _WAITCNT_VM_MASK
        lgkm_allowed = (simm16 >> _WAITCNT_LGKM_SHIFT) & _WAITCNT_LGKM_MASK
        ready = max(now, settle(wf.outstanding_vm, vm_allowed),
                    settle(wf.outstanding_lgkm, lgkm_allowed))
        wf.outstanding_vm = [t for t in wf.outstanding_vm if t > ready]
        wf.outstanding_lgkm = [t for t in wf.outstanding_lgkm if t > ready]
        return ready

    # ------------------------------------------------------------------

    def run_workgroup(self, workgroup, start_time=0.0, fast=None):
        """Execute one workgroup's wavefronts to completion.

        Returns ``(end_time, CuRunStats)``.  The wavefronts must already
        be register-initialised by the ultra-threaded dispatcher.

        ``fast`` selects the prepared-plan issue loop (``True``), the
        superblock-compiled variant of it (``"superblock"``), the
        reference interpreter (``False``), or picks automatically
        (``None``: superblock whenever no observer is attached).  The
        fast loops produce bit-identical state, stats and cycle counts
        -- the ``fast-vs-reference`` and ``superblock`` oracles enforce
        this -- but emit no observation events, so an attached observer
        always forces the reference path.
        """
        wavefronts = [wf for wf in workgroup.wavefronts if not wf.done]
        if len(wavefronts) > self.max_wavefronts:
            raise SimulationError(
                "workgroup needs {} wavefronts; the CU supports {}".format(
                    len(wavefronts), self.max_wavefronts
                )
            )
        if fast is None:
            fast = "superblock" if self.obs is None else False
        if fast and self.obs is None and wavefronts:
            program = wavefronts[0].program
            if all(wf.program is program for wf in wavefronts):
                return self._run_fast(workgroup, start_time, wavefronts,
                                      superblock=fast == "superblock")
        return self._run_reference(workgroup, start_time, wavefronts)

    def _run_reference(self, workgroup, start_time, wavefronts):
        stats = CuRunStats(wavefronts=len(wavefronts))
        obs = self.obs
        # Static cost columns, one table per distinct program (the
        # reference loop, unlike the fast loops, allows mixed-program
        # wavefronts).  The rows are exactly frontend_cost /
        # unit_occupancy per instruction, so timing is unchanged.
        tables = {}
        for wf in wavefronts:
            wf.ready_at = start_time
            wf.stall_cause = "operand-dep"
            if id(wf.program) not in tables:
                tables[id(wf.program)] = get_timing_table(
                    wf.program, self.timing)
        decode_free = start_time
        finish_time = start_time
        barrier_waiters = []
        issued = 0
        rr = 0  # round-robin tie-break rotation

        live = list(wavefronts)
        while live:
            # -- pick the next wavefront: earliest-ready, round-robin ties
            candidates = [wf for wf in live if not wf.at_barrier]
            if not candidates:
                raise SimulationError(
                    "barrier deadlock: every live wavefront is waiting"
                )
            best, best_key = None, None
            n = len(candidates)
            for j in range(n):
                wf = candidates[(rr + j) % n]
                key = wf.ready_at
                if best is None or key < best_key:
                    best, best_key = wf, key
            rr += 1
            wf = best

            table = tables[id(wf.program)]
            index = wf.program.index_of_address(wf.pc)
            inst = wf.program.instructions[index]
            self._check_supported(inst)

            issued += 1
            if issued > self.max_instructions:
                raise SimulationError(
                    "instruction budget exceeded (kernel stuck in a loop?)"
                )
            start = max(wf.ready_at, decode_free)
            fe_cost = table.fe_costs[index]
            if obs is not None:
                # The issue slot idled for (start - decode_free) cycles
                # waiting on this wavefront; attribute the gap to
                # whatever last deferred its ready time.
                if start > decode_free:
                    obs.emit_stall(Stall(
                        cycle=decode_free, cu_index=self.cu_index,
                        wf_id=wf.wf_id, cause=wf.stall_cause,
                        cycles=start - decode_free))
                obs.emit_issue(InstructionIssue(
                    cycle=start, cu_index=self.cu_index, wf_id=wf.wf_id,
                    address=inst.address, name=inst.spec.name,
                    unit=inst.spec.unit.value, frontend_cycles=fe_cost))
            fe_done = start + fe_cost
            decode_free = fe_done
            wf.pc += inst.words * 4
            wf.instructions_executed += 1
            stats.instructions += 1
            unit_name = inst.spec.unit.value
            stats.per_unit[unit_name] = stats.per_unit.get(unit_name, 0) + 1
            stats.per_name[inst.spec.name] = stats.per_name.get(inst.spec.name, 0) + 1

            name = inst.spec.name
            if name == "s_endpgm":
                wf.done = True
                end = fe_done + self.timing.endpgm_cycles
                finish_time = max(finish_time, end,
                                  *(wf.outstanding_vm or [0.0]),
                                  *(wf.outstanding_lgkm or [0.0]))
                live.remove(wf)
                # A barrier can now be releasable if this wavefront
                # exited before reaching it.
                self._try_release_barrier(workgroup, barrier_waiters)
                if obs is not None:
                    obs.emit_step(WavefrontStep(
                        cycle=fe_done, cu_index=self.cu_index, wf=wf,
                        inst=inst))
                continue
            if name == "s_barrier":
                wf.at_barrier = True
                wf.ready_at = fe_done
                barrier_waiters.append(wf)
                if workgroup.arrive_at_barrier():
                    self._release(workgroup, barrier_waiters)
                if obs is not None:
                    obs.emit_step(WavefrontStep(
                        cycle=fe_done, cu_index=self.cu_index, wf=wf,
                        inst=inst))
                continue
            if name == "s_waitcnt":
                wf.ready_at = self._waitcnt_target(
                    wf, inst.fields["simm16"], fe_done)
                # The cause string must track every deferral even with
                # no observer attached: a profiler attached *between*
                # launches on a warm board would otherwise attribute
                # the first observed gap to a stale cause.
                wf.stall_cause = ("memory" if wf.ready_at > fe_done
                                  else "operand-dep")
                if obs is not None:
                    obs.emit_step(WavefrontStep(
                        cycle=fe_done, cu_index=self.cu_index, wf=wf,
                        inst=inst))
                continue

            if inst.spec.is_memory:
                pool = self.pools[FunctionalUnit.LSU]
                info = lsu.execute_memory(wf, inst, self.memory)
                # Dynamic LSU pricing: the table row holds the base
                # (single-transaction) occupancy; coalescing width is
                # an explicit multiplier, not an attribute stashed on
                # the instruction.
                transactions = info.transactions
                occupancy = table.occupancies[index] * (
                    transactions if transactions > 1 else 1)
                lsu_done = pool.acquire(fe_done, occupancy)
                if info.space == "lds":
                    complete = self.memory.lds_access_time(
                        lsu_done, cu_index=self.cu_index)
                elif info.addrs is not None and info.lane_mask is not None:
                    complete = self.memory.access_time(
                        self.cu_index, lsu_done, info.addrs, info.lane_mask)
                else:
                    complete = self.memory.scalar_access_time(
                        self.cu_index, lsu_done, info.addrs)
                getattr(wf, "outstanding_" + info.counter).append(complete)
                stats.memory_accesses += 1
                wf.ready_at = lsu_done
                wf.stall_cause = ("fu-busy"
                                  if lsu_done - occupancy > fe_done
                                  else "operand-dep")
                if obs is not None:
                    obs.emit_step(WavefrontStep(
                        cycle=fe_done, cu_index=self.cu_index, wf=wf,
                        inst=inst))
                continue

            # ALU / branch path.
            pool = self.pools[inst.spec.unit]
            occupancy = table.occupancies[index]
            done = pool.acquire(fe_done, occupancy)
            operations.execute(wf, inst)
            wf.ready_at = done
            finish_time = max(finish_time, done)
            # Waited on a busy unit instance vs. serialised on the
            # wavefront's own in-order result.
            wf.stall_cause = ("fu-busy" if done - occupancy > fe_done
                              else "operand-dep")
            if obs is not None:
                obs.emit_step(WavefrontStep(
                    cycle=fe_done, cu_index=self.cu_index, wf=wf, inst=inst))

        end_time = max(finish_time, decode_free)
        stats.cycles = end_time - start_time
        if obs is not None:
            if end_time > decode_free:
                # Tail after the last issue: outstanding memory plus
                # the endpgm epilogue draining the pipe.
                obs.emit_stall(Stall(
                    cycle=decode_free, cu_index=self.cu_index, wf_id=-1,
                    cause="drain", cycles=end_time - decode_free))
            obs.emit_span(Span(
                kind="workgroup",
                name="wg{}".format(",".join(str(g) for g in
                                            workgroup.group_id)),
                start=start_time, end=end_time, cu_index=self.cu_index,
                meta=(("wavefronts", len(wavefronts)),
                      ("instructions", stats.instructions))))
        return end_time, stats

    def _run_fast(self, workgroup, start_time, wavefronts, superblock=False):
        """Prepared-plan issue loop: the reference loop minus all the
        per-issue reclassification, operand decoding and event guards.

        Every timing decision is computed with the same arithmetic on
        the same values as :meth:`_run_reference`; divergence in any
        bit of final state, stats or cycles is a bug (and is what the
        ``fast-vs-reference`` oracle hunts for).

        With ``superblock=True``, straight-line ALU runs compiled by
        :mod:`repro.cu.superblock` execute fused -- one closed-form
        timing advance from the block's static cost table (or the
        per-step ``step_advance`` fallback when fusion is disabled or
        a used pool has several instances) plus one batched semantics
        call -- only when the picked wavefront is the sole schedulable
        candidate (so no interleaving decision is skipped) and the
        whole block fits the instruction budget (so budget errors raise
        at the exact per-instruction point).  Blocks are disabled
        entirely on restricted (trimmed) architectures.
        """
        prepared = get_prepared(wavefronts[0].program, self.timing)
        bad = prepared.restrictions(self)
        by_address = prepared.by_address
        stats = CuRunStats(wavefronts=len(wavefronts))
        for wf in wavefronts:
            wf.ready_at = start_time
            wf.stall_cause = "operand-dep"
        decode_free = start_time
        finish_time = start_time
        barrier_waiters = []
        issued = 0
        rr = 0
        counts = [0] * len(prepared.plans)
        memory_accesses = 0
        max_instructions = self.max_instructions
        memory = self.memory
        cu_index = self.cu_index
        pools = self.pools
        lsu_pool = pools[FunctionalUnit.LSU]
        lsu_base = self.timing.lsu_cycles
        endpgm_cycles = self.timing.endpgm_cycles

        blocks = None
        sb_counts = {}
        sb_pending = {}  # wavefront -> first unflushed block offset
        if superblock and bad is None:
            blocks = prepared.superblocks(self.num_simd, self.num_simf)
        if blocks is not None:
            busy_salu = pools[FunctionalUnit.SALU].busy_until
            busy_branch = pools[FunctionalUnit.BRANCH].busy_until
            busy_simd = pools[FunctionalUnit.SIMD].busy_until
            busy_simf = pools[FunctionalUnit.SIMF].busy_until
            simd_multi = len(busy_simd) > 1
            simf_multi = len(busy_simf) > 1
            busy_lists = (busy_salu, busy_branch, busy_simd, busy_simf)
            fuse = timing_fusion_enabled()
            _gang_acq = acquire_slot

        live = list(wavefronts)
        while live:
            # barrier_waiters tracks exactly the at-barrier wavefronts
            # (workgroups run once on fresh wavefronts), so the common
            # no-barrier case skips the candidate filter.
            if barrier_waiters:
                candidates = [wf for wf in live if not wf.at_barrier]
                if not candidates:
                    raise SimulationError(
                        "barrier deadlock: every live wavefront is waiting"
                    )
            else:
                candidates = live
            n = len(candidates)
            best, best_key = None, None
            for j in range(n):
                wf = candidates[(rr + j) % n]
                key = wf.ready_at
                if best is None or key < best_key:
                    best, best_key = wf, key
            rr += 1
            wf = best

            if blocks is not None and (entry := blocks.get(wf.pc)) is not None:
                blk = entry[0]
                if n == 1 and entry[1] == 0 \
                        and issued + blk.count <= max_instructions:
                    # Sole schedulable candidate: no other wavefront
                    # can interleave, and a fused ALU run cannot change
                    # that (no barrier/endpgm/EXEC writes inside a
                    # block), so the whole run executes as one call.
                    # The reference would advance the round-robin
                    # cursor once per pick.
                    ready = wf.ready_at
                    start = ready if ready > decode_free else decode_free
                    fused = blk.fused
                    if fuse and fused is not None:
                        # Closed-form timing from the block's static
                        # cost table -- bit-identical to the per-step
                        # recurrence (see FusedBlockTiming).
                        fe_done, done = fused.advance(start, busy_lists)
                    else:
                        fe_done, done = step_advance(blk.steps, start,
                                                     busy_lists)
                    blk.sem_all(wf)
                    decode_free = fe_done
                    wf.pc = blk.end_pc
                    wf.instructions_executed += blk.count
                    issued += blk.count
                    rr += blk.count - 1
                    wf.ready_at = done
                    if done > finish_time:
                        finish_time = done
                    wf.stall_cause = ("fu-busy"
                                      if done - blk.last_occ > fe_done
                                      else "operand-dep")
                    sb_counts[blk.head] = sb_counts.get(blk.head, 0) + 1
                    continue
                # Deferred-semantics step: issue this block instruction
                # from its precompiled (frontend, occupancy, pool) cost
                # triple -- block timing is data-independent -- and
                # postpone its register effects to the block-end flush
                # through the range-guarded ``sem`` function.  Exact:
                # the timing arithmetic below is the per-instruction
                # ALU path verbatim; a wavefront's own flush always
                # precedes its next non-block instruction (program
                # order), and ALU instructions of distinct wavefronts
                # touch disjoint state, so interleaved picks commute
                # with the deferred flush (see repro.cu.superblock).
                # On an aborting exception (budget, memory fault in
                # another wavefront) pending effects stay unflushed;
                # every abort path discards board state and compares
                # error messages only, and the faulting instruction's
                # own wavefront is always fully flushed, so the raise
                # point and message match the reference exactly.
                issued += 1
                if issued > max_instructions:
                    raise SimulationError(
                        "instruction budget exceeded (kernel stuck in a loop?)"
                    )
                k = entry[1]
                fe, occ, pid = blk.steps[k]
                ready = wf.ready_at
                start = ready if ready > decode_free else decode_free
                fe_done = start + fe
                decode_free = fe_done
                if pid == 2:
                    if simd_multi:
                        done = _gang_acq(busy_simd, fe_done, occ)
                    else:
                        b = busy_simd[0]
                        done = (fe_done if fe_done > b else b) + occ
                        busy_simd[0] = done
                elif pid == 0:
                    b = busy_salu[0]
                    done = (fe_done if fe_done > b else b) + occ
                    busy_salu[0] = done
                elif pid == 3:
                    if simf_multi:
                        done = _gang_acq(busy_simf, fe_done, occ)
                    else:
                        b = busy_simf[0]
                        done = (fe_done if fe_done > b else b) + occ
                        busy_simf[0] = done
                else:
                    b = busy_branch[0]
                    done = (fe_done if fe_done > b else b) + occ
                    busy_branch[0] = done
                k += 1
                wf.pc = blk.addrs[k]
                wf.instructions_executed += 1
                wf.ready_at = done
                if done > finish_time:
                    finish_time = done
                wf.stall_cause = ("fu-busy" if done - occ > fe_done
                                  else "operand-dep")
                k0 = sb_pending.setdefault(wf, k - 1)
                if k == blk.count:
                    del sb_pending[wf]
                    blk.sem(wf, k0, k)
                    idxs = blk.indices
                    for i in range(k0, k):
                        counts[idxs[i]] += 1
                    for unit, cum in blk.cum_busy:
                        pools[unit].busy_cycles += cum[k] - cum[k0]
                continue

            plan = by_address.get(wf.pc)
            if plan is None:
                wf.program.index_of_address(wf.pc)  # raises AssemblyError
                raise SimulationError(
                    "prepared program lost PC 0x{:x}".format(wf.pc))
            if bad is not None and plan.address in bad:
                self._check_supported(plan.inst)

            issued += 1
            if issued > max_instructions:
                raise SimulationError(
                    "instruction budget exceeded (kernel stuck in a loop?)"
                )
            ready = wf.ready_at
            start = ready if ready > decode_free else decode_free
            fe_done = start + plan.fe_cost
            decode_free = fe_done
            wf.pc += plan.pc_step
            wf.instructions_executed += 1
            counts[plan.index] += 1

            kind = plan.kind
            if kind == KIND_ALU:
                pool = pools[plan.unit]
                occupancy = plan.occupancy
                busy = pool.busy_until
                if len(busy) == 1:
                    free_at = busy[0]
                    done = (fe_done if fe_done > free_at else free_at) + occupancy
                    busy[0] = done
                    pool.busy_cycles += occupancy
                else:
                    done = pool.acquire(fe_done, occupancy)
                plan.exec_fn(wf)
                wf.ready_at = done
                if done > finish_time:
                    finish_time = done
                wf.stall_cause = ("fu-busy" if done - occupancy > fe_done
                                  else "operand-dep")
            elif kind == KIND_MEMORY:
                info = plan.mem_fn(wf, plan.inst, memory)
                transactions = info.transactions
                occupancy = lsu_base * (transactions if transactions > 1 else 1)
                busy = lsu_pool.busy_until
                free_at = busy[0]
                lsu_done = (fe_done if fe_done > free_at else free_at) + occupancy
                busy[0] = lsu_done
                lsu_pool.busy_cycles += occupancy
                if info.space == "lds":
                    complete = memory.lds_access_time(lsu_done, cu_index=cu_index)
                elif info.addrs is not None and info.lane_mask is not None:
                    complete = memory.access_time(
                        cu_index, lsu_done, info.addrs, info.lane_mask,
                        info.span)
                else:
                    complete = memory.scalar_access_time(
                        cu_index, lsu_done, info.addrs)
                if info.counter == "vm":
                    wf.outstanding_vm.append(complete)
                else:
                    wf.outstanding_lgkm.append(complete)
                memory_accesses += 1
                wf.ready_at = lsu_done
                wf.stall_cause = ("fu-busy"
                                  if lsu_done - occupancy > fe_done
                                  else "operand-dep")
            elif kind == KIND_WAITCNT:
                target = self._waitcnt_target(wf, plan.simm16, fe_done)
                wf.ready_at = target
                wf.stall_cause = ("memory" if target > fe_done
                                  else "operand-dep")
            elif kind == KIND_ENDPGM:
                wf.done = True
                end = fe_done + endpgm_cycles
                finish_time = max(finish_time, end,
                                  *(wf.outstanding_vm or [0.0]),
                                  *(wf.outstanding_lgkm or [0.0]))
                live.remove(wf)
                self._try_release_barrier(workgroup, barrier_waiters)
            else:  # KIND_BARRIER
                wf.at_barrier = True
                wf.ready_at = fe_done
                barrier_waiters.append(wf)
                if workgroup.arrive_at_barrier():
                    self._release(workgroup, barrier_waiters)

        for head, times in sb_counts.items():
            # Fold block executions into the per-plan issue counts and
            # the pool utilisation counters (integer occupancies, so
            # the deferred sum is exact regardless of order).
            blk = blocks[head][0]
            for index in blk.indices:
                counts[index] += times
            for unit, total in blk.busy_totals:
                pools[unit].busy_cycles += total * times

        end_time = max(finish_time, decode_free)
        stats.cycles = end_time - start_time
        stats.instructions = issued
        stats.memory_accesses = memory_accesses
        per_unit = stats.per_unit
        per_name = stats.per_name
        for plan, count in zip(prepared.plans, counts):
            if count:
                per_unit[plan.unit_name] = per_unit.get(plan.unit_name, 0) + count
                per_name[plan.name] = per_name.get(plan.name, 0) + count
        return end_time, stats

    def _release(self, workgroup, barrier_waiters):
        release_time = max(wf.ready_at for wf in barrier_waiters)
        for wf in barrier_waiters:
            wf.at_barrier = False
            wf.ready_at = release_time + 1
            wf.stall_cause = "barrier"
        barrier_waiters.clear()
        workgroup.release_barrier()

    def _try_release_barrier(self, workgroup, barrier_waiters):
        if not barrier_waiters:
            return
        live = [wf for wf in workgroup.wavefronts if not wf.done]
        if live and all(wf.at_barrier for wf in live):
            self._release(workgroup, barrier_waiters)
