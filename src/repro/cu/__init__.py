"""MIAOW2.0 compute-unit simulator."""

from .lsu import AccessInfo, make_buffer_descriptor
from .pipeline import ComputeUnit, CuRunStats
from .timing import DEFAULT_TIMING, CuTimingParams
from .vector import VECTOR_OPS, VectorOpSpec, execute_lanewise, lanewise_execution
from .wavefront import Wavefront
from .workgroup import Workgroup

__all__ = [
    "ComputeUnit", "CuRunStats", "Wavefront", "Workgroup",
    "CuTimingParams", "DEFAULT_TIMING", "AccessInfo", "make_buffer_descriptor",
    "VECTOR_OPS", "VectorOpSpec", "execute_lanewise", "lanewise_execution",
]
