"""Prepared execution plans: the pipeline's trimmed hot path.

The reference interpreter in :mod:`repro.cu.pipeline` re-classifies
every instruction at every issue -- dictionary lookups on the mnemonic,
operand-code decoding in :meth:`Wavefront.read_scalar`, a fresh
``AccessInfo`` timing query, event-object guards.  None of that work
depends on anything but the *instruction encoding*, which is immutable
once a :class:`~repro.asm.program.Program` is decoded.

A :class:`PreparedProgram` hoists all of it to once-per-program cost:

* every instruction becomes an :class:`InstPlan` carrying its
  pre-classified kind, static front-end cost and unit occupancy, and a
  *bound executor closure* with operand readers/writers resolved to
  direct register-file accesses;
* plans are looked up by PC through a plain dict, replacing
  ``index_of_address`` + list indexing;
* prepared programs are memoized in a content-hash-keyed LRU shared
  with the service's artifact cache, so repeat launches of the same
  binary (service jobs, fuzz replays, benchmark repeats) skip the
  whole preparation.

Exactness contract: a plan's executor must be *observationally
identical* to ``operations.execute`` / ``lsu.execute_memory`` on the
same instruction -- same register/memory effects, same exceptions at
the same point.  Any operand shape the specializers cannot prove they
reproduce falls back to a closure over the generic dispatcher, so the
fast path is never wrong, merely (rarely) not fast.  The
``fast-vs-reference`` oracle in :mod:`repro.verify` enforces the
contract bit-for-bit over the fuzz corpus.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..isa import registers as regs
from ..isa.formats import Format
from ..mem.global_memory import _BYTE_OFFSETS, dedup_keep_last
from . import lsu, operations, vector
from .timing import (KIND_ALU, KIND_BARRIER, KIND_ENDPGM,  # noqa: F401
                     KIND_MEMORY, KIND_WAITCNT, DEFAULT_TIMING,
                     frontend_cost, get_timing_table, unit_occupancy)
from .wavefront import MASK32, MASK64


class InstPlan:
    """Per-instruction precomputation consumed by the fast issue loop.

    Kind, front-end cost and static occupancy are read straight out of
    the program's :class:`~repro.cu.timing.TimingTable` row (built from
    :func:`frontend_cost` / :func:`unit_occupancy` once per content
    key); the plan adds what the table cannot hold -- the bound
    executor closures.
    """

    __slots__ = ("index", "address", "name", "unit", "unit_name", "kind",
                 "fe_cost", "occupancy", "pc_step", "simm16", "exec_fn",
                 "mem_fn", "inst", "specialized")

    def __init__(self, inst, index, timing, table=None):
        sp = inst.spec
        self.index = index
        self.address = inst.address
        self.name = sp.name
        self.unit = sp.unit
        self.unit_name = sp.unit.value
        self.fe_cost = (table.fe_costs[index] if table is not None
                        else frontend_cost(inst, timing))
        self.pc_step = inst.words * 4
        self.simm16 = 0
        self.exec_fn = None
        self.mem_fn = None
        self.inst = inst
        #: True when the executor is a proven specialization (not the
        #: generic-dispatcher fallback) -- the superblock compiler only
        #: fuses specialized ALU plans.
        self.specialized = False
        if sp.name == "s_endpgm":
            self.kind = KIND_ENDPGM
            self.occupancy = 0
        elif sp.name == "s_barrier":
            self.kind = KIND_BARRIER
            self.occupancy = 0
        elif sp.name == "s_waitcnt":
            self.kind = KIND_WAITCNT
            self.occupancy = 0
            self.simm16 = inst.fields["simm16"]
        elif sp.is_memory:
            self.kind = KIND_MEMORY
            # Base LSU occupancy; scaled by the access's explicit
            # transaction count at issue time, like the reference path.
            self.occupancy = (table.occupancies[index] if table is not None
                              else timing.lsu_cycles)
            if inst.fmt is Format.SMRD:
                self.mem_fn = _build_smrd(inst) or lsu._exec_smrd
            elif inst.fmt in (Format.MUBUF, Format.MTBUF):
                self.mem_fn = _build_buffer(inst) or lsu._exec_buffer
            else:
                self.mem_fn = lsu._exec_ds
        else:
            self.kind = KIND_ALU
            self.occupancy = (table.occupancies[index] if table is not None
                              else unit_occupancy(inst, timing))
            self.exec_fn, self.specialized = _build_exec(inst)


# ---------------------------------------------------------------------------
# Operand specialization.
# ---------------------------------------------------------------------------

_SPECIAL_SCALARS = frozenset((
    regs.VCC_LO, regs.VCC_HI, regs.M0, regs.EXEC_LO, regs.EXEC_HI,
    regs.VCCZ, regs.EXECZ, regs.SCC,
))


def _inline_constant(code):
    """The inline-constant value of ``code``, or None if it has none."""
    if code == regs.LITERAL or code in _SPECIAL_SCALARS \
            or code >= regs.VGPR_BASE \
            or regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        return None
    try:
        return regs.inline_value(code) & MASK32
    except Exception:
        return None


def _code_readable(code, literal):
    """Would the reference reader accept this source code?"""
    if code >= regs.VGPR_BASE or code in _SPECIAL_SCALARS:
        return True
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        return True
    if code == regs.LITERAL:
        return literal is not None
    return _inline_constant(code) is not None


def _scalar_reader(code, literal):
    """Build ``f(wf) -> int`` matching ``wf.read_scalar(code, literal)``."""
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        def read(wf, _i=code):
            return int(wf.sgprs[_i])
        return read
    if code == regs.LITERAL and literal is not None:
        value = literal & MASK32
        return lambda wf: value
    constant = _inline_constant(code)
    if constant is not None:
        return lambda wf: constant
    # VCC/EXEC/M0/SCC change at runtime; unknown codes and a missing
    # literal dword must raise exactly like the generic reader.
    return lambda wf: wf.read_scalar(code, literal)


def _scalar_writer(code):
    """Build ``f(wf, value)`` matching ``wf.write_scalar(code, value)``."""
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        def write(wf, value, _i=code):
            wf.sgprs[_i] = value & MASK32
        return write
    return lambda wf, value: wf.write_scalar(code, value)


def _vector_reader(code, literal):
    """Build ``f(wf) -> (64,) uint32`` matching ``wf.read_vector``."""
    if code >= regs.VGPR_BASE:
        row = code - regs.VGPR_BASE
        def read(wf, _r=row):
            return wf.vgprs[_r]
        return read
    constant = _inline_constant(code)
    if code == regs.LITERAL and literal is not None:
        constant = literal & MASK32
    if constant is not None:
        arr = np.full(64, constant, dtype=np.uint32)
        arr.setflags(write=False)
        return lambda wf: arr
    if regs.SGPR_FIRST <= code <= regs.SGPR_LAST:
        def read(wf, _i=code):
            return np.full(64, wf.sgprs[_i], dtype=np.uint32)
        return read
    return lambda wf: wf.read_vector(code, literal)


# ---------------------------------------------------------------------------
# Per-format executor builders.  Each returns a closure observationally
# identical to the reference dispatcher, or None to fall back.
# ---------------------------------------------------------------------------

def _build_sop2(inst):
    sp, f = inst.spec, inst.fields
    if sp.op64:
        impl = operations.SOP2_IMPL64.get(sp.name)
        if impl is None:
            return None
        a_code, b_code, d_code = f["ssrc0"], f["ssrc1"], f["sdst"]
        writes_scc = sp.writes_scc

        def fn(wf):
            result, scc = impl(wf.read_scalar64(a_code), wf.read_scalar64(b_code))
            wf.write_scalar64(d_code, result)
            if writes_scc and scc is not None:
                wf.scc = scc
        return fn
    impl = operations.SOP2_IMPL.get(sp.name)
    if impl is None:
        return None
    read_a = _scalar_reader(f["ssrc0"], inst.literal)
    read_b = _scalar_reader(f["ssrc1"], inst.literal)
    write_d = _scalar_writer(f["sdst"])
    writes_scc = sp.writes_scc

    def fn(wf):
        result, scc = impl(read_a(wf), read_b(wf), wf.scc)
        write_d(wf, result)
        if writes_scc and scc is not None:
            wf.scc = scc
    return fn


def _build_sopk(inst):
    sp, f = inst.spec, inst.fields
    simm = f["simm16"]
    if simm >= 0x8000:
        simm -= 0x10000
    sdst = f["sdst"]
    read_d = _scalar_reader(sdst, None)
    write_d = _scalar_writer(sdst)
    if sp.name == "s_movk_i32":
        value = simm & MASK32
        return lambda wf: write_d(wf, value)
    if sp.name == "s_addk_i32":
        addend = simm & MASK32

        def fn(wf):
            result, scc = operations._add_i32(read_d(wf), addend)
            write_d(wf, result)
            wf.scc = scc
        return fn
    if sp.name == "s_mulk_i32":
        def fn(wf):
            write_d(wf, (operations._s32(read_d(wf)) * simm) & MASK32)
        return fn
    return None


def _build_sop1(inst):
    sp, f = inst.spec, inst.fields
    name = sp.name
    if name == "s_mov_b64":
        src, dst = f["ssrc0"], f["sdst"]
        return lambda wf: wf.write_scalar64(dst, wf.read_scalar64(src))
    if name == "s_not_b64":
        src, dst = f["ssrc0"], f["sdst"]

        def fn(wf):
            result = (~wf.read_scalar64(src)) & MASK64
            wf.write_scalar64(dst, result)
            wf.scc = int(result != 0)
        return fn
    if name in ("s_and_saveexec_b64", "s_or_saveexec_b64"):
        src, dst = f["ssrc0"], f["sdst"]
        is_and = name.startswith("s_and")

        def fn(wf):
            value = wf.read_scalar64(src)
            old_exec = wf.exec_mask
            wf.write_scalar64(dst, old_exec)
            wf.exec_mask = (value & old_exec) if is_and else (value | old_exec)
            wf.scc = int(wf.exec_mask != 0)
        return fn
    impl = operations.SOP1_IMPL.get(name)
    if impl is None:
        return None
    read_a = _scalar_reader(f["ssrc0"], inst.literal)
    write_d = _scalar_writer(f["sdst"])
    writes_scc = sp.writes_scc

    def fn(wf):
        result, scc = impl(read_a(wf))
        write_d(wf, result)
        if writes_scc and scc is not None:
            wf.scc = scc
    return fn


def _build_sopc(inst):
    sp, f = inst.spec, inst.fields
    parts = sp.name.split("_")
    if len(parts) != 4:
        return None
    cmp_fn = operations._SCMP.get(parts[2])
    if cmp_fn is None:
        return None
    signed = parts[3] == "i32"
    read_a = _scalar_reader(f["ssrc0"], inst.literal)
    read_b = _scalar_reader(f["ssrc1"], inst.literal)
    if signed:
        def fn(wf):
            wf.scc = int(cmp_fn(operations._s32(read_a(wf)),
                                operations._s32(read_b(wf))))
    else:
        def fn(wf):
            wf.scc = int(cmp_fn(read_a(wf), read_b(wf)))
    return fn


#: Branch-taken predicates; None = unconditional.
_BRANCH_TAKEN = {
    "s_branch": None,
    "s_cbranch_scc0": lambda wf: wf.scc == 0,
    "s_cbranch_scc1": lambda wf: wf.scc == 1,
    "s_cbranch_vccz": lambda wf: wf.vcc == 0,
    "s_cbranch_vccnz": lambda wf: wf.vcc != 0,
    "s_cbranch_execz": lambda wf: wf.exec_mask == 0,
    "s_cbranch_execnz": lambda wf: wf.exec_mask != 0,
}


def _build_sopp(inst):
    name = inst.spec.name
    if name == "s_nop":
        return lambda wf: None
    if name not in _BRANCH_TAKEN:
        return None
    simm = inst.fields["simm16"]
    if simm >= 0x8000:
        simm -= 0x10000
    target = inst.address + 4 + 4 * simm
    taken = _BRANCH_TAKEN[name]
    if taken is None:
        def fn(wf):
            wf.pc = target
    else:
        def fn(wf):
            if taken(wf):
                wf.pc = target
    return fn


def _build_vector(inst):
    sp, f, fmt = inst.spec, inst.fields, inst.fmt
    name = sp.name

    # Codes the reference dispatcher *reads* (even when unused by the
    # op) -- all must be acceptable to the generic reader, otherwise
    # the reference raises where the specialization would not.
    ref_codes = [f["src0"]]
    if fmt is Format.VOP3:
        ref_codes.append(f["src1"])
        if sp.num_srcs >= 3 or name == "v_mac_f32":
            ref_codes.append(f["src2"])
    if not all(_code_readable(code, inst.literal) for code in ref_codes):
        return None

    read_0 = _vector_reader(f["src0"], inst.literal)
    if fmt in (Format.VOP2, Format.VOPC):
        vsrc1 = f["vsrc1"]

        def read_1(wf, _r=vsrc1):
            return wf.vgprs[_r]
    elif fmt is Format.VOP3:
        read_1 = _vector_reader(f["src1"], inst.literal)
    else:
        read_1 = None

    if name.startswith("v_cmp_"):
        parts = name.split("_")
        if len(parts) != 4 or read_1 is None:
            return None
        pred = operations._VCMP.get(parts[2])
        if pred is None:
            return None
        ty = parts[3]
        if ty == "f32":
            view = operations._fv
        elif ty == "i32":
            view = operations._sv
        else:
            def view(a):
                return a
        sdst = f.get("sdst")
        to_vcc = sdst is None or sdst == regs.VCC_LO

        def fn(wf):
            bools = pred(view(read_0(wf)), view(read_1(wf)))
            result = operations._mask_from_bools(bools, wf.active_lane_mask())
            if to_vcc:
                wf.vcc = result
            else:
                wf.write_scalar64(sdst, result)
        return fn

    if name == "v_cndmask_b32":
        if read_1 is None:
            return None
        vdst = f["vdst"]
        if fmt is Format.VOP3:
            sel_code = f["src2"]

            def fn(wf):
                selector = operations._bools_from_mask(wf.read_scalar64(sel_code))
                wf.write_vgpr(vdst, np.where(selector, read_1(wf), read_0(wf)),
                              wf.active_lane_mask())
        else:
            def fn(wf):
                selector = operations._bools_from_mask(wf.vcc)
                wf.write_vgpr(vdst, np.where(selector, read_1(wf), read_0(wf)),
                              wf.active_lane_mask())
        return fn

    if name in ("v_add_i32", "v_sub_i32", "v_subrev_i32",
                "v_addc_u32", "v_subb_u32"):
        if read_1 is None:
            return None
        vdst = f["vdst"]
        has_cin = name in ("v_addc_u32", "v_subb_u32")
        is_vop3 = fmt is Format.VOP3
        sdst = f.get("sdst", regs.VCC_LO) if is_vop3 else regs.VCC_LO
        cin_code = f["src2"] if (has_cin and is_vop3) else None
        # Widening-free carry arithmetic (see repro.cu.vector): the
        # uint64 temporaries this closure used to allocate dominated
        # carry-heavy kernels.
        core = {
            "v_add_i32": lambda a, b, c: vector.add_with_carry(a, b),
            "v_addc_u32": lambda a, b, c: vector.add_with_carry(a, b, c),
            "v_sub_i32": lambda a, b, c: vector.sub_with_borrow(a, b),
            "v_subrev_i32": lambda a, b, c: vector.sub_with_borrow(b, a),
            "v_subb_u32": lambda a, b, c: vector.sub_with_borrow(a, b, c),
        }[name]

        def fn(wf):
            a = read_0(wf)
            b = read_1(wf)
            if has_cin:
                cin = vector.bools_from_mask(
                    wf.read_scalar64(cin_code) if cin_code is not None
                    else wf.vcc)
            else:
                cin = None
            result, carry = core(a, b, cin)
            lane_mask = wf.active_lane_mask()
            carry_mask = vector.mask_from_bools(carry, lane_mask)
            if sdst == regs.VCC_LO:
                wf.vcc = carry_mask
            else:
                wf.write_scalar64(sdst, carry_mask)
            wf.write_vgpr(vdst, result, lane_mask)
        return fn

    if name == "v_mac_f32":
        if read_1 is None:
            return None
        vdst = f["vdst"]

        def fn(wf):
            acc = wf.vgprs[vdst]
            result = operations._from_f(
                operations._fv(read_0(wf)) * operations._fv(read_1(wf))
                + operations._fv(acc))
            wf.write_vgpr(vdst, result, wf.active_lane_mask())
        return fn

    impl = operations.VBIN_IMPL.get(name)
    if impl is not None:
        if read_1 is None:
            return None
        vdst = f["vdst"]

        def fn(wf):
            wf.write_vgpr(vdst, impl(read_0(wf), read_1(wf)),
                          wf.active_lane_mask())
        return fn
    impl = operations.VUN_IMPL.get(name)
    if impl is not None:
        vdst = f["vdst"]

        def fn(wf):
            wf.write_vgpr(vdst, impl(read_0(wf)), wf.active_lane_mask())
        return fn
    impl = operations.VTRI_IMPL.get(name)
    if impl is not None:
        if read_1 is None or fmt is not Format.VOP3:
            return None
        vdst = f["vdst"]
        # VTRI_IMPL also holds two-source VOP3 ops (v_mul_lo/hi): the
        # reference passes exactly ``num_srcs`` sources through.
        if sp.num_srcs >= 3:
            read_2 = _vector_reader(f["src2"], inst.literal)

            def fn(wf):
                wf.write_vgpr(vdst, impl(read_0(wf), read_1(wf), read_2(wf)),
                              wf.active_lane_mask())
        else:
            def fn(wf):
                wf.write_vgpr(vdst, impl(read_0(wf), read_1(wf)),
                              wf.active_lane_mask())
        return fn
    return None


_FUSED_BUFFER_OPS = frozenset((
    "buffer_load_dword", "buffer_store_dword",
    "tbuffer_load_format_x", "tbuffer_store_format_x",
    "tbuffer_load_format_xy", "tbuffer_store_format_xy",
    "buffer_load_ubyte", "buffer_load_sbyte", "buffer_store_byte",
))


def _build_smrd(inst):
    """Fused executor for SMRD loads.

    The generic path calls ``GlobalMemory.read_u32`` once per dword —
    bounds check, slice, view, int conversion each time.  When the
    whole ``count``-dword window is in range, this executor reads it
    with one slice-view into the SGPR file.  Destinations or descriptor
    bases that reach past the plain SGPR file (special registers,
    IndexError territory) keep the generic path and its exact errors.
    """
    f, name = inst.fields, inst.spec.name
    count = {"dword": 1, "dwordx2": 2,
             "dwordx4": 4}.get(name.rsplit("_", 1)[-1])
    if count is None:
        return None
    base_reg = f["sbase"] << 1
    need = base_reg + (3 if "buffer" in name else 1)
    if need > regs.NUM_SGPRS:
        return None
    sdst = f["sdst"]
    if not (regs.SGPR_FIRST <= sdst and sdst + count - 1 <= regs.SGPR_LAST):
        return None
    imm, offset = f["imm"], f["offset"]
    read_offset = None if imm else _scalar_reader(offset, None)

    def fn(wf, inst, memory):
        sgprs = wf.sgprs
        base = int(sgprs[base_reg])
        addr = base + (4 * offset if imm else read_offset(wf))
        gm = memory.global_mem
        end = addr + 4 * count
        if 0 <= addr and end <= gm.size:
            sgprs[sdst:sdst + count] = gm._bytes[addr:end].view(np.uint32)
        else:
            for i in range(count):
                wf.write_scalar(sdst + i, gm.read_u32(addr + 4 * i))
        return lsu.AccessInfo(space="global", counter="lgkm", is_write=False,
                              addrs=addr, transactions=count)
    return fn


def _build_buffer(inst):
    """Fused executor for the common MUBUF/MTBUF accesses.

    The generic path derives the active-lane footprint three times per
    access (records check, functional gather/scatter, prefetch
    coverage); this executor computes it once and hands the footprint
    to the timing query through ``AccessInfo.span``.  Register effects,
    memory effects, error messages and raise points are identical to
    :func:`lsu._exec_buffer` -- any encoding outside the proven subset
    returns None and keeps the generic executor, and a multi-dword
    access that cannot be proven safe up front replays the generic
    executor wholesale (before mutating anything) so partial-effect
    raise points stay exact.
    """
    from ..errors import SimulationError

    f, name = inst.fields, inst.spec.name
    try:
        if name not in _FUSED_BUFFER_OPS:
            return None
        if f["offen"] and f["idxen"]:
            return None  # the reference raises; keep its exact error
        srsrc_base = f["srsrc"] << 2
        read_soffset = _scalar_reader(f["soffset"], None)
        const_offset = f["offset"]
        offen, idxen = f["offen"], f["idxen"]
        vaddr, vdata = f["vaddr"], f["vdata"]
    except KeyError:
        return None
    is_write = "store" in name
    byte_op = name in lsu._BYTE_OPS
    signed = name == "buffer_load_sbyte"
    dwords = lsu._BUFFER_DWORDS.get(name, 1)

    def fn(wf, inst, memory):
        sgprs = wf.sgprs
        base = int(sgprs[srsrc_base])
        size = int(sgprs[srsrc_base + 2])
        lane_mask = wf.active_lane_mask()
        offset = base + read_soffset(wf) + const_offset
        if offen:
            addrs = wf.vgprs[vaddr].astype(np.int64)
            addrs += offset
        elif idxen:
            addrs = wf.vgprs[vaddr].astype(np.int64) * 4 + offset
        else:
            addrs = np.full(64, offset, dtype=np.int64)
        active = wf.active_lanes()
        n_active = active.size
        gm = memory.global_mem
        if n_active:
            sel = addrs[active]
            lo, hi = int(sel.min()), int(sel.max())
            if size != 0 and hi >= base + size:
                raise SimulationError(
                    "{}: access at 0x{:x} beyond buffer records "
                    "[0x{:x}, 0x{:x})".format(name, hi, base, base + size))
            if byte_op:
                # gather_u8/scatter_u8 are already wavefront-wide and
                # range-check (without mutating) before moving data.
                if is_write:
                    gm.scatter_u8(addrs, wf.vgprs[vdata], lane_mask)
                else:
                    wf.write_vgpr(vdata, gm.gather_u8(addrs, lane_mask, signed),
                                  lane_mask)
                span = (n_active, lo, hi)
                return lsu.AccessInfo(space="global", counter="vm",
                                      is_write=is_write, addrs=addrs,
                                      lane_mask=lane_mask, span=span)
            if lo < 0 or hi + 4 > gm.size:
                raise SimulationError(
                    "global memory access out of range: "
                    "0x{:x}..0x{:x} (size 0x{:x})".format(lo, hi + 4, gm.size))
            aligned = not (sel & 3).any()
            if dwords > 1 and not (aligned and hi + 4 * dwords <= gm.size):
                # Unprovable multi-dword access: the per-dword generic
                # loop owns the (possibly partial) effects and raises.
                return lsu._exec_buffer(wf, inst, memory)
            if aligned:
                words = gm._bytes.view(np.uint32)
                word_idx = sel >> 2
                if is_write:
                    # Colliding lane addresses must resolve to
                    # last-active-lane-wins, like the reference loop;
                    # raw fancy assignment leaves that unspecified.
                    for i in range(dwords):
                        idx, vals = dedup_keep_last(
                            word_idx + i, wf.vgprs[vdata + i][active])
                        words[idx] = vals
                    if hi + 4 * dwords > gm.dirty_hi:
                        gm.dirty_hi = hi + 4 * dwords
                else:
                    for i in range(dwords):
                        out = np.zeros(64, dtype=np.uint32)
                        out[active] = words[word_idx + i]
                        wf.write_vgpr(vdata + i, out, lane_mask)
            elif is_write:
                byte_idx = (sel[:, None] + _BYTE_OFFSETS).ravel()
                byte_vals = np.ascontiguousarray(
                    wf.vgprs[vdata][active])[:, None].view(np.uint8).ravel()
                idx, vals = dedup_keep_last(byte_idx, byte_vals)
                gm._bytes[idx] = vals
                if hi + 4 > gm.dirty_hi:
                    gm.dirty_hi = hi + 4
            else:
                out = np.zeros(64, dtype=np.uint32)
                lane_bytes = gm._bytes[sel[:, None] + _BYTE_OFFSETS]
                out[active] = np.ascontiguousarray(lane_bytes) \
                    .view(np.uint32).ravel()
                wf.write_vgpr(vdata, out, lane_mask)
            span = (n_active, lo, hi)
        else:
            if not is_write and not byte_op:
                for i in range(dwords):
                    wf.write_vgpr(vdata + i, np.zeros(64, dtype=np.uint32),
                                  lane_mask)
            span = (0, 0, 0)
        return lsu.AccessInfo(space="global", counter="vm",
                              is_write=is_write, addrs=addrs,
                              lane_mask=lane_mask, span=span,
                              transactions=dwords)
    return fn


def _build_exec(inst):
    """Specialized executor for a non-memory instruction.

    Returns ``(fn, specialized)``.  Falls back to a closure over the
    generic dispatcher (``specialized=False``) whenever the encoding is
    one the specializers cannot prove they reproduce -- including every
    case where the reference would raise, so errors surface at the same
    execution point with the same message.
    """
    fmt = inst.fmt
    fn = None
    try:
        if fmt is Format.SOP2:
            fn = _build_sop2(inst)
        elif fmt is Format.SOPK:
            fn = _build_sopk(inst)
        elif fmt is Format.SOP1:
            fn = _build_sop1(inst)
        elif fmt is Format.SOPC:
            fn = _build_sopc(inst)
        elif fmt is Format.SOPP:
            fn = _build_sopp(inst)
        elif fmt in (Format.VOP1, Format.VOP2, Format.VOPC, Format.VOP3):
            fn = _build_vector(inst)
    except Exception:
        fn = None
    if fn is None:
        return (lambda wf: operations.execute(wf, inst)), False
    return fn, True


# ---------------------------------------------------------------------------
# Prepared programs and the content-keyed cache.
# ---------------------------------------------------------------------------

class PreparedProgram:
    """Execution plans for one (program, timing) pair.

    Carries the program's :class:`~repro.cu.timing.TimingTable` (the
    static cost columns, shared through its own content-keyed LRU) next
    to the plans that bind executors to those rows.
    """

    __slots__ = ("program", "timing", "table", "plans", "by_address",
                 "_restrictions", "_superblocks", "_sb_lock")

    def __init__(self, program, timing):
        self.program = program
        self.timing = timing
        self.table = get_timing_table(program, timing)
        self.plans = [InstPlan(inst, i, timing, self.table)
                      for i, inst in enumerate(program.instructions)]
        self.by_address = {plan.address: plan for plan in self.plans}
        self._restrictions = {}
        self._superblocks = {}
        self._sb_lock = threading.Lock()

    def superblocks(self, num_simd, num_simf):
        """Compiled superblocks for this program on a given CU shape.

        Returns ``{address: (Superblock, offset)}`` (every in-block
        address, offset 0 being the head) or ``None`` when the program
        has no fusable run.  Compiled lazily per
        ``(num_simd, num_simf)`` shape (pool-instance counts are baked
        into the generated timing arithmetic) and cached on the
        prepared program, so the content-hash LRU that shares prepared
        programs across launches and service jobs shares the compiled
        superblocks too.
        """
        from .superblock import build_superblocks

        key = (num_simd, num_simf)
        with self._sb_lock:
            blocks = self._superblocks.get(key)
            if blocks is None:
                blocks = build_superblocks(self, num_simd, num_simf)
                self._superblocks[key] = blocks
        return blocks or None

    def restrictions(self, cu):
        """Addresses whose instructions fail ``cu._check_supported``.

        Returns ``None`` when every instruction is admissible (the
        common case -- the fast loop then skips the check entirely), or
        a frozenset of byte addresses that must go through the full
        check (and raise) at issue time.
        """
        key = (cu.supported, cu.num_simd == 0, cu.num_simf == 0)
        cached = self._restrictions.get(key)
        if cached is None:
            bad = set()
            for plan in self.plans:
                try:
                    cu._check_supported(plan.inst)
                except Exception:
                    bad.add(plan.address)
            cached = frozenset(bad) if bad else False
            self._restrictions[key] = cached
        return cached or None


PREPARED_CACHE_CAPACITY = 128

_cache_lock = threading.Lock()
_cache = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def lookup_prepared(program, timing=DEFAULT_TIMING):
    """Return ``(PreparedProgram, hit)`` for a program/timing pair.

    Programs without a :meth:`content_key` (ad-hoc stand-ins in tests)
    are prepared uncached.
    """
    global _cache_hits, _cache_misses
    key_fn = getattr(program, "content_key", None)
    if key_fn is None:
        return PreparedProgram(program, timing), False
    key = (key_fn(), timing)
    with _cache_lock:
        prepared = _cache.get(key)
        if prepared is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return prepared, True
        _cache_misses += 1
    prepared = PreparedProgram(program, timing)
    with _cache_lock:
        existing = _cache.get(key)
        if existing is not None:
            _cache.move_to_end(key)
            return existing, True
        _cache[key] = prepared
        while len(_cache) > PREPARED_CACHE_CAPACITY:
            _cache.popitem(last=False)
    return prepared, False


def get_prepared(program, timing=DEFAULT_TIMING):
    """The cached :class:`PreparedProgram` for a program/timing pair."""
    return lookup_prepared(program, timing)[0]


def prepared_cache_stats():
    with _cache_lock:
        return {"hits": _cache_hits, "misses": _cache_misses,
                "size": len(_cache), "capacity": PREPARED_CACHE_CAPACITY}


def prepared_cache_keys():
    """Content-key halves of the cached entries, LRU-first (tests)."""
    with _cache_lock:
        return [key[0] for key in _cache]


def clear_prepared_cache():
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def set_prepared_cache_capacity(capacity):
    """Override the LRU capacity; returns the previous value (tests)."""
    global PREPARED_CACHE_CAPACITY
    with _cache_lock:
        previous = PREPARED_CACHE_CAPACITY
        PREPARED_CACHE_CAPACITY = capacity
        while len(_cache) > PREPARED_CACHE_CAPACITY:
            _cache.popitem(last=False)
    return previous
