"""repro.service: a multi-tenant kernel-execution service.

Turns the one-shot :class:`~repro.core.flow.ScratchFlow` pipeline into
a schedulable serving system: jobs name a benchmark and an
architecture spec; an admission controller resolves the static SCRATCH
flow through a content-addressed artifact cache (the paper's per-
application trimming reuse made explicit); a worker pool executes jobs
on warm simulated boards in parallel; and a stats surface reports
throughput, latency percentiles, queue pressure and cache hit rates.

Quickstart::

    from repro.service import Job, KernelService

    with KernelService(workers=4, mode="process") as svc:
        ids = svc.submit_many([
            Job("matrix_add_i32", {"n": 64}, config="trimmed"),
            Job("conv2d_f32", {"n": 32, "k": 5}, config="multicore"),
        ])
        for result in svc.drain():
            print(result.status.value, result.metrics)
        print(svc.snapshot())
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    application_key,
    binary_key,
    config_key,
    source_key,
)
from .jobs import (
    CONFIG_SPECS,
    Job,
    JobResult,
    JobStatus,
    load_jobs,
    suite_jobs,
)
from .pool import JobPayload, WorkerPool
from .queue import BoundedJobQueue
from .scheduler import KernelService
from .stats import ServiceStats, percentile

__all__ = [
    "ArtifactCache", "CacheStats", "application_key", "binary_key",
    "config_key", "source_key",
    "CONFIG_SPECS", "Job", "JobResult", "JobStatus", "load_jobs",
    "suite_jobs",
    "JobPayload", "WorkerPool", "BoundedJobQueue",
    "KernelService", "ServiceStats", "percentile",
]
