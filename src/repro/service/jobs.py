"""Job model of the kernel-execution service.

A :class:`Job` is one requested kernel-suite execution: it names a
benchmark application from the registry, its constructor parameters
(which fix the NDRange and argument buffers), and the architecture the
caller wants it run on -- either a fixed generation (``original``,
``dcd``, ``baseline``) or one of the application-aware SCRATCH
configurations (``trimmed``, ``multicore``, ``multithread``) that the
admission controller derives per application via the trimming tool and
memoizes in the artifact cache.

Jobs are plain data (picklable) so they can cross the process boundary
into pool workers; results come back as :class:`JobResult`.
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.config import ArchConfig
from ..errors import AdmissionError
from ..exec import ENGINE_NAMES, validate_engine
from ..runtime.metrics import RunMetrics
from ..soc.gpu import HEAP_BASE

#: Launch engines a job may request; the service shares the one
#: registry of :mod:`repro.exec` (kept under its historical name for
#: existing importers).
ENGINE_SPECS = ENGINE_NAMES

#: Architecture specifications a job may name.  The first three are
#: fixed generations; the last three are derived per application by
#: the static flow (assemble -> trim -> plan) and therefore hit the
#: artifact cache.
CONFIG_SPECS = ("original", "dcd", "baseline", "trimmed",
                "multicore", "multithread")

_job_counter = itertools.count(1)


class JobStatus(enum.Enum):
    """Lifecycle of a job inside the service."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class Job:
    """One kernel-execution request.

    ``priority`` follows the unix-nice convention: *lower* values are
    scheduled first.  ``timeout_s`` bounds wall-clock execution time in
    the worker; ``retries`` is how many times a failed attempt is
    re-dispatched before the job is reported FAILED.  ``engine`` pins
    a launch engine (``auto`` resolves per board); ``global_mem_size``
    sizes the board's global memory for jobs whose working set exceeds
    the default (the board content key includes it, so a large-memory
    job is never handed an undersized warm board).

    ``arch`` is the sweep fan-out hook: an explicit
    :class:`~repro.core.config.ArchConfig` that bypasses the named
    ``config`` resolution entirely -- the design-space explorer submits
    arbitrary grid points this way.  When ``arch`` is set, ``config``
    is just a display tag (any string is accepted).
    """

    benchmark: str
    params: Dict[str, object] = field(default_factory=dict)
    config: str = "trimmed"
    arch: Optional[ArchConfig] = None
    priority: int = 0
    max_groups: Optional[int] = None
    verify: bool = True
    timeout_s: Optional[float] = None
    retries: int = 0
    tag: str = ""
    profile: bool = False             # attach PerfCounters in the worker
    engine: str = "auto"              # launch engine (see ENGINE_NAMES)
    global_mem_size: Optional[int] = None  # board global-memory bytes
    #: Preemption budget: the job yields a checkpoint and returns to
    #: the queue every time a launch retires this many instructions,
    #: letting shorter, higher-priority jobs jump in on the warm board.
    slice_instructions: Optional[int] = None

    def __post_init__(self):
        if self.arch is not None and not isinstance(self.arch, ArchConfig):
            raise AdmissionError(
                "arch must be an ArchConfig, got {!r}".format(self.arch))
        if self.arch is None and self.config not in CONFIG_SPECS:
            raise AdmissionError(
                "unknown config spec {!r}; expected one of {}".format(
                    self.config, ", ".join(CONFIG_SPECS)))
        if self.retries < 0:
            raise AdmissionError("negative retry budget")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise AdmissionError("timeout_s must be positive")
        validate_engine(self.engine, none_ok=False, error=AdmissionError)
        if self.global_mem_size is not None \
                and self.global_mem_size <= HEAP_BASE:
            raise AdmissionError(
                "global_mem_size must exceed the heap base (0x{:x})"
                .format(HEAP_BASE))
        if self.slice_instructions is not None \
                and self.slice_instructions < 1:
            raise AdmissionError("slice_instructions must be >= 1")

    def describe(self):
        target = (self.arch.describe() if self.arch is not None
                  else self.config)
        return "{}({}) on {}".format(
            self.benchmark,
            ", ".join("{}={}".format(k, v)
                      for k, v in sorted(self.params.items())),
            target)


def next_job_id():
    """Monotonic job ids, unique within one service process."""
    return next(_job_counter)


@dataclass
class JobResult:
    """What the service reports back for one job."""

    job_id: int
    job: Job
    status: JobStatus
    metrics: Optional[RunMetrics] = None
    error: str = ""
    attempts: int = 1
    #: Times the job was preempted at a slice boundary and requeued
    #: (resume dispatches are not attempts: preemption is progress).
    preemptions: int = 0
    latency_s: float = 0.0
    worker: Optional[int] = None      # worker pid (process mode)
    warm_board: bool = False          # reused a pooled SoftGpu
    engine: Optional[str] = None      # launch engine actually used
    digests: Dict[str, str] = field(default_factory=dict)
    counters: Optional[Dict[str, object]] = None  # PerfCounters.to_dict()

    @property
    def ok(self):
        return self.status is JobStatus.DONE

    def to_dict(self):
        out = {
            "job_id": self.job_id,
            "benchmark": self.job.benchmark,
            "config": self.job.config,
            "tag": self.job.tag,
            "status": self.status.value,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "latency_s": self.latency_s,
            "worker": self.worker,
            "warm_board": self.warm_board,
            "engine": self.engine,
            "digests": dict(self.digests),
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics.to_dict()
        if self.counters is not None:
            out["counters"] = self.counters
        if self.error:
            out["error"] = self.error
        return out


def load_jobs(source):
    """Parse a job list from a JSON file path, file object, or dict.

    Format::

        {"jobs": [
          {"benchmark": "matrix_add_i32", "params": {"n": 64},
           "config": "trimmed", "priority": 0, "repeat": 3}
        ]}

    ``repeat`` expands one entry into N identical jobs (the repeated-
    submission pattern the artifact cache accelerates).  A bare list is
    accepted in place of the wrapping object.
    """
    try:
        if isinstance(source, str):
            with open(source) as handle:
                payload = json.load(handle)
        elif hasattr(source, "read"):
            payload = json.load(source)
        else:
            payload = source
    except json.JSONDecodeError as exc:
        raise AdmissionError("job list is not valid JSON: {}".format(exc))
    if isinstance(payload, dict):
        entries = payload.get("jobs", [])
    else:
        entries = payload
    if not isinstance(entries, list):
        raise AdmissionError("job list must be a JSON array")

    jobs = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "benchmark" not in entry:
            raise AdmissionError(
                "job entry {} must be an object with a 'benchmark' key"
                .format(i))
        entry = dict(entry)
        repeat = int(entry.pop("repeat", 1))
        if repeat < 1:
            raise AdmissionError("job entry {}: repeat must be >= 1".format(i))
        unknown = set(entry) - {
            "benchmark", "params", "config", "priority", "max_groups",
            "verify", "timeout_s", "retries", "tag", "profile",
            "engine", "global_mem_size", "arch", "slice_instructions"}
        if unknown:
            raise AdmissionError(
                "job entry {}: unknown fields {}".format(i, sorted(unknown)))
        if isinstance(entry.get("arch"), dict):
            try:
                entry["arch"] = ArchConfig.from_dict(entry["arch"])
            except (KeyError, ValueError) as exc:
                raise AdmissionError(
                    "job entry {}: invalid arch payload ({})".format(i, exc))
        job = Job(**entry)
        jobs.extend([job] * repeat)
    return jobs


def suite_jobs(config="trimmed", verify=True, names=None, engine="auto"):
    """Jobs for the paper's standard evaluation suite (Section 4).

    One job per benchmark of ``EVAL_CONFIGS`` at the standard scaled
    sizes -- the default workload of ``python -m repro serve``.
    Verifying runs execute every workgroup (sampling would leave the
    unexecuted part of the output unfilled); timing-only runs keep the
    suite's workgroup-sampling caps.  ``engine`` pins a launch engine
    for the whole suite (``auto`` resolves per board).
    """
    from ..kernels.suite import EVAL_CONFIGS

    jobs = []
    for name, (params, max_groups) in EVAL_CONFIGS.items():
        if names is not None and name not in names:
            continue
        jobs.append(Job(benchmark=name, params=dict(params), config=config,
                        max_groups=None if verify else max_groups,
                        verify=verify, engine=engine))
    return jobs
