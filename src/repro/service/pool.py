"""Worker pool: N simulated boards executing jobs in parallel.

Workers execute jobs through the unified :mod:`repro.exec` layer: each
worker context owns an :class:`~repro.exec.Executor` whose
:class:`~repro.exec.BoardPool` keeps **warm boards** -- live
:class:`SoftGpu` instances keyed by board content (architecture hash,
global-memory size, instruction cap).  A job arriving for a board the
worker has built before reuses it (after :meth:`SoftGpu.reset`),
skipping CU/memory model construction; this is the dynamic-dispatch
half of the static/dynamic split the soft-GPGPU serving literature
argues for (the static half lives in :mod:`repro.service.cache`).

Three execution modes:

* ``process`` -- ``concurrent.futures.ProcessPoolExecutor``; true
  parallelism, boards warm per OS process.  The default for
  ``python -m repro serve``.
* ``thread``  -- ``ThreadPoolExecutor`` over one shared executor (the
  board pool's exclusive checkout makes that safe); cheap to spin up,
  GIL-bound.  Used by tests and small deployments.
* ``inline``  -- synchronous execution on the caller's thread;
  deterministic, zero concurrency.  Used for debugging.

Payloads and result dicts are plain picklable data; ``ReproError``
failures are carried *inside* the result dict rather than as pickled
exceptions so custom exception constructors never cross the process
boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import ArchConfig
from ..errors import ReproError, ServiceError
from ..exec import (MAX_WARM_BOARDS, STATUS_PREEMPTED, ExecutionRequest,
                    Executor, PreemptedResult)

__all__ = ["JobPayload", "WorkerPool", "MAX_WARM_BOARDS"]


@dataclass(frozen=True)
class JobPayload:
    """Everything a worker needs to execute one job (picklable)."""

    job_id: int
    benchmark: str
    params: Dict[str, object]
    arch: ArchConfig
    config_key: str
    max_groups: Optional[int] = None
    verify: bool = True
    profile: bool = False
    engine: str = "auto"
    global_mem_size: Optional[int] = None
    #: Preemption budget (instructions per slice), if the job is sliced.
    slice_instructions: Optional[int] = None
    #: A ``PreemptedResult.to_dict()`` envelope when this dispatch
    #: resumes an earlier slice; the request then restores the carried
    #: checkpoint instead of starting the benchmark over.
    resume: Optional[Dict[str, object]] = None

    def to_request(self) -> ExecutionRequest:
        if self.resume is not None:
            envelope = PreemptedResult.from_dict(self.resume)
            return ExecutionRequest(
                checkpoint=envelope.checkpoint,
                engine=self.engine,
                verify=False,
                profile=self.profile,
                digests=True,
                max_slice_instructions=self.slice_instructions,
                label=envelope.label)
        kwargs = {}
        if self.global_mem_size is not None:
            kwargs["global_mem_size"] = self.global_mem_size
        return ExecutionRequest(
            benchmark=self.benchmark,
            params=dict(self.params),
            arch=self.arch,
            engine=self.engine,
            max_groups=self.max_groups,
            verify=self.verify,
            profile=self.profile,
            digests=True,
            max_slice_instructions=self.slice_instructions,
            **kwargs)


def _run_payload(executor: Executor, payload: JobPayload):
    """Execute one payload on ``executor``; returns a picklable dict."""
    try:
        result = executor.execute(payload.to_request())
        if result.status == STATUS_PREEMPTED:
            return {
                "ok": True,
                "preempted": True,
                "job_id": payload.job_id,
                "envelope": result.preempted.to_dict(),
                "worker": os.getpid(),
                "warm_board": result.warm_board,
                "engine": result.engine,
            }
        out = {
            "ok": True,
            "job_id": payload.job_id,
            "seconds": result.seconds,
            "instructions": result.instructions,
            "cu_cycles": result.cu_cycles,
            "digests": result.digests,
            "worker": os.getpid(),
            "warm_board": result.warm_board,
            "engine": result.engine,
        }
        if result.counters is not None:
            out["counters"] = result.counters.to_dict()
        return out
    except ReproError as exc:
        return {
            "ok": False,
            "job_id": payload.job_id,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "worker": os.getpid(),
            "warm_board": False,
        }


#: Per-process executor (process mode; one per forked worker, built
#: lazily so importing this module costs nothing in the parent).
_PROCESS_EXECUTOR = None


def _process_executor() -> Executor:
    global _PROCESS_EXECUTOR
    if _PROCESS_EXECUTOR is None:
        _PROCESS_EXECUTOR = Executor()
    return _PROCESS_EXECUTOR


def _execute_in_process(payload: JobPayload):
    """Top-level entry point for process-pool workers (picklable)."""
    return _run_payload(_process_executor(), payload)


class WorkerPool:
    """A fleet of simulated boards behind a futures executor."""

    MODES = ("process", "thread", "inline")

    def __init__(self, workers=2, mode="process"):
        if mode not in self.MODES:
            raise ServiceError(
                "unknown pool mode {!r}; expected one of {}".format(
                    mode, ", ".join(self.MODES)))
        if workers < 1:
            raise ServiceError("a pool needs at least one worker")
        self.workers = workers
        self.mode = mode
        # Thread and inline modes share one executor per pool: the
        # board pool's exclusive checkout makes concurrent leases safe,
        # and a pool-private executor keeps warm-board state from
        # leaking between services (tests build many).
        self._exec = Executor() if mode != "process" else None
        if mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=workers)
        elif mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-worker")
        else:
            self._executor = None

    def submit(self, payload: JobPayload) -> Future:
        """Dispatch one payload; returns a future of the result dict."""
        if self.mode == "process":
            return self._executor.submit(_execute_in_process, payload)
        if self.mode == "thread":
            return self._executor.submit(_run_payload, self._exec, payload)
        future = Future()
        try:
            future.set_result(_run_payload(self._exec, payload))
        except BaseException as exc:  # simulator bug: surface via future
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
        if self._exec is not None:
            self._exec.pool.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False
