"""Worker pool: N simulated boards executing jobs in parallel.

Each worker owns a shelf of **warm boards** -- live :class:`SoftGpu`
instances keyed by the architecture configuration's content hash.  A
job arriving for a configuration the worker has seen before reuses the
existing board (after :meth:`SoftGpu.reset`), skipping CU/memory model
construction; this is the dynamic-dispatch half of the static/dynamic
split the soft-GPGPU serving literature argues for (the static half
lives in :mod:`repro.service.cache`).

Three execution modes:

* ``process`` -- ``concurrent.futures.ProcessPoolExecutor``; true
  parallelism, boards warm per OS process.  The default for
  ``python -m repro serve``.
* ``thread``  -- ``ThreadPoolExecutor`` with per-thread board shelves;
  cheap to spin up, GIL-bound.  Used by tests and small deployments.
* ``inline``  -- synchronous execution on the caller's thread;
  deterministic, zero concurrency.  Used for debugging.

Payloads and result dicts are plain picklable data; ``ReproError``
failures are carried *inside* the result dict rather than as pickled
exceptions so custom exception constructors never cross the process
boundary.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.config import ArchConfig
from ..errors import ReproError, ServiceError

#: Warm boards kept per worker before least-recently-used eviction.
MAX_WARM_BOARDS = 4


@dataclass(frozen=True)
class JobPayload:
    """Everything a worker needs to execute one job (picklable)."""

    job_id: int
    benchmark: str
    params: Dict[str, object]
    arch: ArchConfig
    config_key: str
    max_groups: Optional[int] = None
    verify: bool = True
    profile: bool = False


@dataclass
class _BoardShelf:
    """Bounded LRU of warm boards, keyed by config content hash."""

    boards: "OrderedDict[str, object]" = field(default_factory=OrderedDict)

    def checkout(self, key, arch):
        from ..runtime.device import SoftGpu

        board = self.boards.pop(key, None)
        warm = board is not None
        if warm:
            board.reset()
        else:
            board = SoftGpu(arch)
            while len(self.boards) >= MAX_WARM_BOARDS:
                self.boards.popitem(last=False)
        self.boards[key] = board
        return board, warm


#: Per-process shelf (process mode; one per forked worker).
_PROCESS_SHELF = _BoardShelf()
#: Per-thread shelves (thread mode; boards are not thread-safe).
_THREAD_LOCAL = threading.local()


def _shelf_for_thread():
    shelf = getattr(_THREAD_LOCAL, "shelf", None)
    if shelf is None:
        shelf = _THREAD_LOCAL.shelf = _BoardShelf()
    return shelf


def _execute_on_shelf(shelf, payload: JobPayload):
    from ..kernels import KERNELS
    from ..obs.counters import PerfCounters

    board, warm = shelf.checkout(payload.config_key, payload.arch)
    board.max_groups = payload.max_groups
    perf = board.attach(PerfCounters()) if payload.profile else None
    try:
        bench = KERNELS[payload.benchmark](**payload.params)
        ctx = bench.run_on(board, verify=payload.verify)
        digests = {}
        for name in bench.reference(ctx):
            buf = ctx[name]
            raw = board.read(buf, dtype="u1")
            digests[name] = hashlib.sha256(raw.tobytes()).hexdigest()
        result = {
            "ok": True,
            "job_id": payload.job_id,
            "seconds": board.elapsed_seconds,
            "instructions": board.instructions,
            "cu_cycles": board.elapsed_cu_cycles,
            "digests": digests,
            "worker": os.getpid(),
            "warm_board": warm,
        }
        if perf is not None:
            result["counters"] = perf.to_dict()
        return result
    except ReproError as exc:
        return {
            "ok": False,
            "job_id": payload.job_id,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "worker": os.getpid(),
            "warm_board": warm,
        }
    finally:
        # Warm boards persist on the shelf; never leave a per-job
        # observer attached to one.
        if perf is not None:
            board.detach(perf)


def _execute_in_process(payload: JobPayload):
    """Top-level entry point for process-pool workers (picklable)."""
    return _execute_on_shelf(_PROCESS_SHELF, payload)


def _execute_in_thread(payload: JobPayload):
    return _execute_on_shelf(_shelf_for_thread(), payload)


class WorkerPool:
    """A fleet of simulated boards behind a futures executor."""

    MODES = ("process", "thread", "inline")

    def __init__(self, workers=2, mode="process"):
        if mode not in self.MODES:
            raise ServiceError(
                "unknown pool mode {!r}; expected one of {}".format(
                    mode, ", ".join(self.MODES)))
        if workers < 1:
            raise ServiceError("a pool needs at least one worker")
        self.workers = workers
        self.mode = mode
        self._inline_shelf = _BoardShelf()
        if mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=workers)
        elif mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-worker")
        else:
            self._executor = None

    def submit(self, payload: JobPayload) -> Future:
        """Dispatch one payload; returns a future of the result dict."""
        if self.mode == "process":
            return self._executor.submit(_execute_in_process, payload)
        if self.mode == "thread":
            return self._executor.submit(_execute_in_thread, payload)
        future = Future()
        try:
            future.set_result(
                _execute_on_shelf(self._inline_shelf, payload))
        except BaseException as exc:  # simulator bug: surface via future
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
        self._inline_shelf.boards.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False
