"""Admission control and orchestration: the service front door.

:class:`KernelService` glues the subsystem together::

    submit(job)
      └─ admission: validate the request, resolve the *static* flow
         through the content-addressed ArtifactCache (assemble → trim →
         synthesize, memoized per application), then enqueue under
         backpressure
    dispatcher thread
      └─ pops jobs in (priority, config-hash) order -- so jobs sharing
         a trimmed configuration batch onto the same warm boards -- and
         feeds the worker pool, holding at most ``2 x workers`` jobs in
         flight so the bounded queue is the real waiting room
    completion callbacks
      └─ per-job timeout and retry policy, RunMetrics assembly from the
         worker's timings plus the cached synthesis report's power, and
         ServiceStats accounting

Results are :class:`~repro.service.jobs.JobResult`; callers wait on
one job (:meth:`result`) or the whole backlog (:meth:`drain`).
"""

from __future__ import annotations

import threading
import time
from functools import partial

from ..core.config import ArchConfig
from ..core.parallelize import plan as plan_parallelism
from ..core.trimmer import TrimmingTool
from ..errors import AdmissionError, JobTimeoutError, ServiceError
from ..fpga.synthesis import Synthesizer
from ..runtime.metrics import RunMetrics
from .cache import ArtifactCache, config_key
from .jobs import Job, JobResult, JobStatus, next_job_id
from .pool import JobPayload, WorkerPool
from .queue import BoundedJobQueue
from .stats import ServiceStats

_FIXED_CONFIGS = {
    "original": ArchConfig.original,
    "dcd": ArchConfig.dcd,
    "baseline": ArchConfig.baseline,
}


class _Ticket:
    """Mutable per-job state tracked by the scheduler."""

    def __init__(self, job_id, job, arch, report, key):
        self.job_id = job_id
        self.job = job
        self.arch = arch
        self.report = report
        self.config_key = key
        self.attempts = 0
        self.preemptions = 0
        #: PreemptedResult.to_dict() of the latest slice; the next
        #: dispatch resumes from its checkpoint instead of restarting.
        self.resume_envelope = None
        self.submitted = None
        self.started = None
        self.future = None
        self.timer = None
        self.settled = False
        self.slot_held = False
        self.result = None
        self.done = threading.Event()
        self.lock = threading.Lock()


class KernelService:
    """A multi-tenant kernel-execution service over simulated boards."""

    def __init__(self, workers=2, mode="process", queue_depth=64,
                 baseline=None, cache=None, max_inflight=None,
                 clock=time.monotonic):
        self.baseline = baseline or ArchConfig.baseline()
        self.cache = cache or ArtifactCache()
        self.synthesizer = Synthesizer()
        self.tool = TrimmingTool(synthesizer=self.synthesizer)
        self.stats = ServiceStats(clock=clock)
        self.queue = BoundedJobQueue(queue_depth)
        self.pool = WorkerPool(workers, mode)
        self._clock = clock
        self._tickets = {}
        self._order = []
        self._lock = threading.Lock()
        self._inflight = threading.Semaphore(max_inflight or 2 * workers)
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch", daemon=True)
        self._dispatcher.start()

    # -- admission ---------------------------------------------------------

    def _resolve(self, job: Job):
        """Run (or reuse) the static flow; returns (arch, report, key).

        This is where the paper's per-application reuse happens: the
        trim plan and synthesis report come out of the content-
        addressed cache, so only the first submission of an application
        pays for Algorithm 1 and the synthesis model.
        """
        from ..kernels import KERNELS

        if job.benchmark not in KERNELS:
            raise AdmissionError(
                "unknown benchmark {!r}".format(job.benchmark))
        bench = KERNELS[job.benchmark](**job.params)

        # Warm the prepared-program cache at admission: the worker's
        # launches then skip decode + plan construction for every
        # kernel of this application (repeat submissions hit).
        programs = bench.programs()
        for program in programs:
            self.cache.prepared(program)

        if job.slice_instructions is not None and len(programs) > 1:
            # A checkpoint resumes the in-flight *launch*; host-side
            # choreography after it (further kernels) is not replayed,
            # so slicing is only sound for single-kernel applications.
            raise AdmissionError(
                "slice_instructions requires a single-kernel "
                "application; {} has {} kernels".format(
                    job.benchmark, len(programs)))

        if job.arch is not None:
            # Sweep fan-out: the caller fixed the architecture (a DSE
            # grid point); only synthesis is resolved, via the cache.
            report = self.cache.synthesize(job.arch, self.synthesizer)
            return job.arch, report, config_key(job.arch)

        if job.config in _FIXED_CONFIGS:
            arch = _FIXED_CONFIGS[job.config]()
            report = self.cache.synthesize(arch, self.synthesizer)
            return arch, report, config_key(arch)

        trim = self.cache.trim(bench.programs(), self.tool,
                               baseline=self.baseline,
                               datapath_bits=bench.datapath_bits)
        if job.config == "trimmed":
            return trim.config, trim.report, config_key(trim.config)
        arch = plan_parallelism(trim.config, job.config,
                                synthesizer=self.synthesizer)
        report = self.cache.synthesize(arch, self.synthesizer)
        return arch, report, config_key(arch)

    def submit(self, job: Job, block=True, timeout=None) -> int:
        """Admit one job; returns its id.

        Raises :class:`AdmissionError` for invalid requests, and for
        backpressure (queue full beyond ``timeout`` seconds, or
        immediately with ``block=False``).
        """
        if self._closed:
            raise AdmissionError("service is shut down")
        try:
            arch, report, key = self._resolve(job)
        except AdmissionError:
            self.stats.record_rejection()
            raise
        job_id = next_job_id()
        ticket = _Ticket(job_id, job, arch, report, key)
        ticket.submitted = self._clock()
        with self._lock:
            self._tickets[job_id] = ticket
            self._order.append(job_id)
        try:
            self.queue.put(ticket, priority=job.priority, batch_key=key,
                           block=block, timeout=timeout)
        except AdmissionError:
            with self._lock:
                del self._tickets[job_id]
                self._order.remove(job_id)
            self.stats.record_rejection()
            raise
        self.stats.record_submit()
        return job_id

    def submit_many(self, jobs, block=True, timeout=None):
        return [self.submit(job, block=block, timeout=timeout)
                for job in jobs]

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            ticket = self.queue.get()
            if ticket is None:
                return
            # Cap in-flight jobs so the bounded admission queue -- not
            # the executor's unbounded internal queue -- absorbs load.
            while not self._inflight.acquire(timeout=0.1):
                if self._closed:
                    self._settle(ticket, self._cancelled(ticket))
                    break
            else:
                ticket.slot_held = True
                self._dispatch(ticket)

    def _dispatch(self, ticket):
        # A resume continues work already under way: it does not
        # consume an attempt (preemption is progress, not failure).
        if ticket.resume_envelope is None:
            ticket.attempts += 1
        if ticket.started is None:
            ticket.started = self._clock()
        payload = JobPayload(
            job_id=ticket.job_id,
            benchmark=ticket.job.benchmark,
            params=dict(ticket.job.params),
            arch=ticket.arch,
            config_key=ticket.config_key,
            max_groups=ticket.job.max_groups,
            verify=ticket.job.verify,
            profile=ticket.job.profile,
            engine=ticket.job.engine,
            global_mem_size=ticket.job.global_mem_size,
            slice_instructions=ticket.job.slice_instructions,
            resume=ticket.resume_envelope,
        )
        if ticket.job.timeout_s is not None and ticket.timer is None:
            ticket.timer = threading.Timer(
                ticket.job.timeout_s, self._on_timeout, args=(ticket,))
            ticket.timer.daemon = True
            ticket.timer.start()
        future = self.pool.submit(payload)
        ticket.future = future
        future.add_done_callback(partial(self._on_done, ticket))

    # -- completion --------------------------------------------------------

    def _latency(self, ticket):
        # Submission-to-settle: queue wait counts.  That is the number
        # a latency SLO is about -- and the one preemptive time
        # slicing improves for short jobs stuck behind a long run.
        origin = ticket.submitted or ticket.started
        return max(0.0, self._clock() - (origin or self._clock()))

    def _cancelled(self, ticket):
        return JobResult(ticket.job_id, ticket.job, JobStatus.CANCELLED,
                         error="service shut down before dispatch",
                         attempts=ticket.attempts,
                         latency_s=self._latency(ticket))

    def _on_done(self, ticket, future):
        with ticket.lock:
            if ticket.settled:
                return
        exc = future.exception()
        if exc is not None:
            outcome = {"ok": False, "error": str(exc),
                       "error_type": type(exc).__name__}
        else:
            outcome = future.result()

        if not outcome["ok"]:
            if ticket.resume_envelope is not None:
                # A failed *resume* consumes an attempt like any other
                # failed run (only successful slices are free), so a
                # persistently failing resume still exhausts retries.
                ticket.attempts += 1
            if ticket.attempts <= ticket.job.retries:
                self.stats.record_retry()
                self._dispatch(ticket)
                return
            self._settle(ticket, JobResult(
                ticket.job_id, ticket.job, JobStatus.FAILED,
                error="{}: {}".format(outcome.get("error_type", "Error"),
                                      outcome.get("error", "")),
                attempts=ticket.attempts,
                preemptions=ticket.preemptions,
                latency_s=self._latency(ticket),
                worker=outcome.get("worker"),
                warm_board=outcome.get("warm_board", False)))
            return

        if outcome.get("preempted"):
            # The slice budget expired: the job made progress and comes
            # back as a checkpoint envelope.  Release the in-flight
            # slot *before* requeueing so a short high-priority job can
            # jump in on the (now free, still warm) board, then put the
            # ticket back at its job priority -- the resume may land on
            # any worker (the checkpoint migrates across boards).
            ticket.preemptions += 1
            ticket.resume_envelope = outcome["envelope"]
            self.stats.record_preemption()
            if ticket.slot_held:
                ticket.slot_held = False
                self._inflight.release()
            if not self.queue.requeue(ticket,
                                      priority=ticket.job.priority,
                                      batch_key=ticket.config_key):
                self._settle(ticket, self._cancelled(ticket))
            return

        metrics = RunMetrics(
            label="{}@{}".format(ticket.job.benchmark,
                                 ticket.arch.describe()),
            seconds=outcome["seconds"],
            instructions=outcome["instructions"],
            power=ticket.report.power,
        )
        self._settle(ticket, JobResult(
            ticket.job_id, ticket.job, JobStatus.DONE,
            metrics=metrics,
            attempts=ticket.attempts,
            preemptions=ticket.preemptions,
            latency_s=self._latency(ticket),
            worker=outcome.get("worker"),
            warm_board=outcome.get("warm_board", False),
            engine=outcome.get("engine"),
            digests=outcome.get("digests", {}),
            counters=outcome.get("counters")),
            cu_cycles=outcome.get("cu_cycles", 0.0))

    def _on_timeout(self, ticket):
        with ticket.lock:
            if ticket.settled:
                return
        if ticket.future is not None:
            ticket.future.cancel()
        self._settle(ticket, JobResult(
            ticket.job_id, ticket.job, JobStatus.TIMEOUT,
            error=str(JobTimeoutError(ticket.job_id, ticket.job.timeout_s)),
            attempts=ticket.attempts,
            latency_s=self._latency(ticket)))

    def _settle(self, ticket, result, cu_cycles=0.0):
        with ticket.lock:
            if ticket.settled:
                return
            ticket.settled = True
            ticket.result = result
        if ticket.timer is not None:
            ticket.timer.cancel()
        if ticket.slot_held:
            ticket.slot_held = False
            self._inflight.release()
        self.stats.record_result(result, cu_cycles=cu_cycles)
        ticket.done.set()

    # -- results -----------------------------------------------------------

    def result(self, job_id, timeout=None) -> JobResult:
        """Block until one job settles; returns its JobResult."""
        with self._lock:
            ticket = self._tickets.get(job_id)
        if ticket is None:
            raise ServiceError("unknown job id {}".format(job_id))
        if not ticket.done.wait(timeout=timeout):
            raise JobTimeoutError(job_id, timeout)
        return ticket.result

    def drain(self, timeout=None):
        """Wait for every admitted job; results in submission order."""
        deadline = None if timeout is None else self._clock() + timeout
        results = []
        with self._lock:
            order = list(self._order)
        for job_id in order:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - self._clock())
            results.append(self.result(job_id, timeout=remaining))
        return results

    def run(self, jobs, timeout=None):
        """Convenience: submit a batch, drain it, return the results."""
        self.submit_many(jobs)
        return self.drain(timeout=timeout)

    # -- observability -----------------------------------------------------

    def snapshot(self):
        """A JSON-ready dashboard frame of the whole service."""
        return self.stats.snapshot(
            cache_stats=self.cache.stats,
            queue_depth=len(self.queue),
            queue_highwater=self.queue.depth_highwater,
            workers=self.pool.workers,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self, wait=True):
        """Stop admitting, drain the dispatcher, shut the pool down."""
        self._closed = True
        self.queue.close()
        if wait:
            self._dispatcher.join(timeout=30)
        self.pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
