"""Service-level metrics: what the operator of the service watches.

Aggregates per-job :class:`~repro.runtime.metrics.RunMetrics` and
service-side timings into the usual serving dashboard quantities:
throughput (jobs/s and simulated cycles/s), wall-clock latency
percentiles, queue pressure, warm-board reuse, and the artifact
cache's hit rate.  Thread-safe; completions arrive from callback
threads.
"""

from __future__ import annotations

import threading
import time

from ..obs.serialize import SerializableMixin
from .jobs import JobStatus


def percentile(values, fraction):
    """Nearest-rank percentile of a sequence (no numpy dependency)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class ServiceStats(SerializableMixin):
    """Running aggregation over the lifetime of one service."""

    def __init__(self, clock=time.monotonic):
        self._lock = threading.Lock()
        self._clock = clock
        self._started = None
        self._finished = None
        self.submitted = 0
        self.rejected = 0
        self.retries = 0
        self.preemptions = 0
        self.by_status = {status: 0 for status in JobStatus}
        self.latencies = []
        self.simulated_seconds = 0.0
        self.simulated_cycles = 0.0
        self.instructions = 0
        self.warm_hits = 0
        self.completed_with_board = 0

    # -- recording ---------------------------------------------------------

    def record_submit(self):
        with self._lock:
            self.submitted += 1
            if self._started is None:
                self._started = self._clock()

    def record_rejection(self):
        with self._lock:
            self.rejected += 1

    def record_retry(self):
        with self._lock:
            self.retries += 1

    def record_preemption(self):
        """One job yielded at a slice boundary and returned to the
        queue (progress, not a failure -- tracked separately from
        retries)."""
        with self._lock:
            self.preemptions += 1

    def record_result(self, result, cu_cycles=0.0):
        with self._lock:
            self.by_status[result.status] += 1
            self.latencies.append(result.latency_s)
            self._finished = self._clock()
            if result.metrics is not None:
                self.simulated_seconds += result.metrics.seconds
                self.instructions += result.metrics.instructions
                self.simulated_cycles += cu_cycles
            if result.status is JobStatus.DONE:
                self.completed_with_board += 1
                if result.warm_board:
                    self.warm_hits += 1

    # -- derived quantities ------------------------------------------------

    @property
    def completed(self):
        return self.by_status[JobStatus.DONE]

    @property
    def wall_seconds(self):
        if self._started is None or self._finished is None:
            return 0.0
        return max(0.0, self._finished - self._started)

    @property
    def jobs_per_second(self):
        wall = self.wall_seconds
        return self.completed / wall if wall > 0 else 0.0

    @property
    def cycles_per_second(self):
        """Simulated CU cycles retired per wall-clock second."""
        wall = self.wall_seconds
        return self.simulated_cycles / wall if wall > 0 else 0.0

    @property
    def warm_board_rate(self):
        if self.completed_with_board == 0:
            return 0.0
        return self.warm_hits / self.completed_with_board

    def to_dict(self):
        """The dashboard frame under the repo-wide serialization
        convention; service-context fields (queue, cache, workers)
        carry their defaults.  :meth:`KernelService.snapshot` calls
        :meth:`snapshot` with the live values."""
        return self.snapshot()

    def snapshot(self, cache_stats=None, queue_depth=0,
                 queue_highwater=0, workers=0):
        """One JSON-ready dashboard frame (stable snake_case keys)."""
        with self._lock:
            frame = {
                "workers": workers,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "retries": self.retries,
                "preemptions": self.preemptions,
                "status": {s.value: n for s, n in self.by_status.items()
                           if n},
                "completed": self.completed,
                "wall_seconds": self.wall_seconds,
                "jobs_per_second": self.jobs_per_second,
                "cycles_per_second": self.cycles_per_second,
                "simulated_seconds": self.simulated_seconds,
                "instructions": self.instructions,
                "latency_p50_s": percentile(self.latencies, 0.50),
                "latency_p95_s": percentile(self.latencies, 0.95),
                "queue_depth": queue_depth,
                "queue_depth_highwater": queue_highwater,
                "warm_board_rate": self.warm_board_rate,
            }
        if cache_stats is not None:
            frame["cache"] = cache_stats.to_dict()
        return frame
