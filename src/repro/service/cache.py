"""Content-addressed cache for the static SCRATCH flow.

The paper's central observation is that the expensive, *application-
aware* work -- binary analysis, architecture trimming, synthesis --
happens once per application and is reused across every subsequent
launch (Algorithm 1; the Section 4.3 reconfiguration study prices
exactly this reuse).  This module makes that reuse explicit: every
static artifact is memoized under a content hash, so repeated
submissions of the same application skip the whole assemble -> trim ->
synthesize pipeline.

Three key spaces:

* **source key** -- SHA-256 of the raw assembly text; memoizes the
  assembler.
* **binary key** -- SHA-256 of the *assembled* kernel (dwords +
  dispatch metadata).  Whitespace or comment edits re-assemble to the
  same dwords and therefore land on the same binary key, so trim plans
  survive cosmetic source changes -- content addressing at the level
  the trimming tool actually consumes.
* **config key** -- SHA-256 of an :class:`ArchConfig`'s semantic
  fields; memoizes synthesis reports and names the warm-board slots of
  the worker pool.

All methods are thread-safe (submissions may arrive from many client
threads).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict

from ..asm.assembler import assemble
from ..core.config import ArchConfig
# The config-key space is owned by the execution layer (it also names
# warm boards there); re-exported here for the service's callers.
from ..exec.lease import config_key  # noqa: F401


def _sha(*chunks):
    digest = hashlib.sha256()
    for chunk in chunks:
        if isinstance(chunk, str):
            chunk = chunk.encode("utf-8")
        digest.update(chunk)
        digest.update(b"\x00")
    return digest.hexdigest()


def source_key(source):
    """Content hash of raw kernel source text."""
    return _sha("src", source)


def binary_key(program):
    """Content hash of an assembled kernel.

    Covers everything execution depends on: the instruction dwords,
    the kernel name, the CB1 argument layout, register counts and LDS
    size.  Deliberately excludes the source text, labels and any
    formatting, so whitespace-only edits map to the same key.

    Delegates to :meth:`Program.content_key` -- the same key space the
    simulator's prepared-program cache is indexed by, so a service
    cache hit and a decode/prepare cache hit are one and the same
    event.
    """
    return program.content_key()


def application_key(programs, baseline, datapath_bits):
    """Content hash of a whole application's static-flow input.

    Order-independent over kernels (Algorithm 1 unions requirements),
    and parameterised by the baseline architecture and datapath width
    the trim is derived against.
    """
    return _sha(
        "app",
        ",".join(sorted(binary_key(p) for p in programs)),
        config_key(baseline),
        str(datapath_bits),
    )




@dataclass
class CacheStats:
    """Hit/miss accounting, per artifact kind and overall."""

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)

    def record(self, kind, hit):
        table = self.hits if hit else self.misses
        table[kind] = table.get(kind, 0) + 1

    @property
    def total_hits(self):
        return sum(self.hits.values())

    @property
    def total_misses(self):
        return sum(self.misses.values())

    @property
    def hit_rate(self):
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    def to_dict(self):
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Memoizes the static flow: assembly, trim plans, synthesis."""

    def __init__(self):
        self._lock = threading.Lock()
        self._programs = {}    # source key -> Program
        self._trims = {}       # application key -> TrimResult
        self._reports = {}     # config key -> SynthesisReport
        self.stats = CacheStats()

    # -- assembler ---------------------------------------------------------

    def assemble(self, source):
        """Assemble ``source``, memoized under its content hash."""
        key = source_key(source)
        with self._lock:
            program = self._programs.get(key)
            self.stats.record("assemble", program is not None)
        if program is None:
            program = assemble(source)
            with self._lock:
                self._programs[key] = program
        return program

    # -- trimming tool -----------------------------------------------------

    def trim(self, programs, tool, baseline=None, datapath_bits=32):
        """Run (or reuse) Algorithm 1 for an application's kernels."""
        baseline = baseline or ArchConfig.baseline()
        key = application_key(programs, baseline, datapath_bits)
        with self._lock:
            result = self._trims.get(key)
            self.stats.record("trim", result is not None)
        if result is None:
            result = tool.trim(programs, baseline=baseline,
                               datapath_bits=datapath_bits)
            with self._lock:
                self._trims[key] = result
        return result

    # -- prepared programs ---------------------------------------------------

    def prepared(self, program, timing=None):
        """Decode-and-specialize ``program`` for the fast launch engines.

        Backed by the simulator's global prepared-program cache (keyed
        by ``binary_key`` x timing parameters), so warming a kernel
        here makes every worker's subsequent launch of the same binary
        skip decode and plan construction entirely.  The per-program
        timing table shares the same key space and is warmed alongside
        (plan construction reads its rows).  Records ``prepare`` and
        ``timing-table`` hits/misses in :attr:`stats`.
        """
        from ..cu.prepared import DEFAULT_TIMING, lookup_prepared
        from ..cu.timing import lookup_timing_table

        timing = timing or DEFAULT_TIMING
        _, table_hit = lookup_timing_table(program, timing)
        prepared, hit = lookup_prepared(program, timing)
        with self._lock:
            self.stats.record("prepare", hit)
            self.stats.record("timing-table", table_hit)
        return prepared

    # -- synthesis ---------------------------------------------------------

    def synthesize(self, config, synthesizer):
        """Synthesise ``config`` (or reuse the memoized report)."""
        key = config_key(config)
        with self._lock:
            report = self._reports.get(key)
            self.stats.record("synth", report is not None)
        if report is None:
            report = synthesizer.synthesize(config)
            with self._lock:
                self._reports[key] = report
        return report

    # -- introspection -----------------------------------------------------

    def __len__(self):
        with self._lock:
            return (len(self._programs) + len(self._trims)
                    + len(self._reports))

    def clear(self):
        with self._lock:
            self._programs.clear()
            self._trims.clear()
            self._reports.clear()
            self.stats = CacheStats()
