"""Bounded priority queue with backpressure.

The admission controller's waiting room.  Capacity is bounded so an
overloaded service pushes back on producers instead of growing an
unbounded backlog: ``put`` blocks until space frees (backpressure) and
raises :class:`~repro.errors.AdmissionError` when its patience window
expires or the queue is closed.

Ordering is ``(priority, batch_key, sequence)``: lower priority values
first (unix-nice convention), then jobs that share a batch key -- the
admission controller uses the trimmed configuration's content hash --
so compatible jobs leave the queue adjacently and land on warm boards,
and FIFO within a batch.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from ..errors import AdmissionError


class BoundedJobQueue:
    """Thread-safe bounded priority queue."""

    def __init__(self, capacity=64):
        if capacity < 1:
            raise AdmissionError("queue capacity must be >= 1")
        self.capacity = capacity
        self._heap = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.depth_highwater = 0

    # -- producer side -----------------------------------------------------

    def put(self, item, priority=0, batch_key="", block=True, timeout=None):
        """Enqueue ``item``; blocks while full.

        Raises :class:`AdmissionError` when the queue is closed, when
        ``block=False`` and the queue is full, or when ``timeout``
        seconds of backpressure pass without space freeing.
        """
        with self._not_full:
            if self._closed:
                raise AdmissionError("queue is closed to new jobs")
            if not block and len(self._heap) >= self.capacity:
                raise AdmissionError(
                    "queue full ({} jobs deep)".format(self.capacity))
            deadline = None if timeout is None else timeout
            while len(self._heap) >= self.capacity:
                if not self._not_full.wait(timeout=deadline):
                    raise AdmissionError(
                        "backpressure timeout: queue stayed full ({} deep) "
                        "for {:.3g}s".format(self.capacity, timeout))
                if self._closed:
                    raise AdmissionError("queue is closed to new jobs")
            heapq.heappush(self._heap,
                           (priority, batch_key, next(self._seq), item))
            self.depth_highwater = max(self.depth_highwater, len(self._heap))
            self._not_empty.notify()

    def requeue(self, item, priority=0, batch_key=""):
        """Re-enqueue a preempted item, bypassing the capacity bound.

        Completion callbacks requeue preempted jobs after releasing
        their in-flight slot; blocking on a full queue there would
        deadlock the dispatcher, and rejecting would lose a job the
        service already admitted -- so a requeue always fits (the item
        held queue capacity once; letting the depth transiently exceed
        the bound is the lesser evil).  Returns ``False`` when the
        queue is closed (the caller settles the job as cancelled).
        """
        with self._lock:
            if self._closed:
                return False
            heapq.heappush(self._heap,
                           (priority, batch_key, next(self._seq), item))
            self.depth_highwater = max(self.depth_highwater, len(self._heap))
            self._not_empty.notify()
            return True

    # -- consumer side -----------------------------------------------------

    def get(self, block=True, timeout=None):
        """Pop the next item, or ``None`` when closed and drained."""
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                if not block:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            _, _, _, item = heapq.heappop(self._heap)
            self._not_full.notify()
            return item

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Refuse new jobs; consumers drain what remains, then get None."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self):
        with self._lock:
            return self._closed

    def __len__(self):
        with self._lock:
            return len(self._heap)
