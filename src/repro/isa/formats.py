"""Southern Islands instruction encoding formats.

MIAOW2.0 consumes real Southern Islands machine code (Section 2.3: the
validation microbenchmarks are written directly in SI machine code), so
this module implements the actual bit-level layouts from the *Southern
Islands Series Instruction Set Architecture Reference Guide* for every
format the 156-instruction set touches:

=========  ======  =====================================================
format     words   purpose
=========  ======  =====================================================
SOP2       1       scalar, two sources
SOPK       1       scalar, 16-bit inline constant
SOP1       1       scalar, one source
SOPC       1       scalar compare (writes SCC)
SOPP       1       program control (branches, barrier, waitcnt, endpgm)
SMRD       1       scalar memory read
VOP2       1       vector, two sources
VOP1       1       vector, one source
VOPC       1       vector compare (writes VCC)
VOP3       2       vector, three sources / explicit scalar destination
DS         2       local data share (LDS) access
MUBUF      2       untyped buffer memory access
MTBUF      2       typed buffer memory access
=========  ======  =====================================================

A literal constant appends one extra dword to any single-word format;
the Fetch stage then performs two fetches and joins the halves before
decoding (Section 2.1.1) -- the fetch timing model charges for this.

Every ``pack_*`` function returns a list of 32-bit words; ``unpack_*``
functions return a dict of field values.  The identifier bit patterns
live in :data:`FORMAT_MAGIC` so the decoder can classify a word.
"""

from __future__ import annotations

import enum

from ..errors import DecodingError, EncodingError

WORD_MASK = 0xFFFFFFFF


class Format(enum.Enum):
    SOP2 = "sop2"
    SOPK = "sopk"
    SOP1 = "sop1"
    SOPC = "sopc"
    SOPP = "sopp"
    SMRD = "smrd"
    VOP2 = "vop2"
    VOP1 = "vop1"
    VOPC = "vopc"
    VOP3 = "vop3"
    DS = "ds"
    MUBUF = "mubuf"
    MTBUF = "mtbuf"

    @property
    def is_scalar(self):
        return self in (Format.SOP2, Format.SOPK, Format.SOP1, Format.SOPC, Format.SOPP)

    @property
    def is_vector(self):
        return self in (Format.VOP2, Format.VOP1, Format.VOPC, Format.VOP3)

    @property
    def is_memory(self):
        return self in (Format.SMRD, Format.DS, Format.MUBUF, Format.MTBUF)

    @property
    def base_words(self):
        """Instruction size in dwords, excluding any literal constant."""
        return 2 if self in (Format.VOP3, Format.DS, Format.MUBUF, Format.MTBUF) else 1


def _field(value, width, name):
    value = int(value)
    if value < 0 or value >= (1 << width):
        raise EncodingError(
            "field {} value {} does not fit in {} bits".format(name, value, width)
        )
    return value


def _bits(word, hi, lo):
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


# ---------------------------------------------------------------------------
# Scalar formats.
# ---------------------------------------------------------------------------

def pack_sop2(op, sdst, ssrc0, ssrc1):
    # Opcodes >= 96 collide with the SOPK/SOP1/SOPC/SOPP carve-outs of
    # the scalar encoding space.
    if not 0 <= op < 96:
        raise EncodingError("SOP2 opcode out of range: {}".format(op))
    word = (0b10 << 30) | (_field(op, 7, "op") << 23)
    word |= _field(sdst, 7, "sdst") << 16
    word |= _field(ssrc1, 8, "ssrc1") << 8
    word |= _field(ssrc0, 8, "ssrc0")
    return [word & WORD_MASK]


def unpack_sop2(word):
    return {
        "op": _bits(word, 29, 23),
        "sdst": _bits(word, 22, 16),
        "ssrc1": _bits(word, 15, 8),
        "ssrc0": _bits(word, 7, 0),
    }


def pack_sopk(op, sdst, simm16):
    # Opcodes 29..31 are the SOP1/SOPC/SOPP identifiers.
    if not 0 <= op < 29:
        raise EncodingError("SOPK opcode out of range: {}".format(op))
    word = (0b1011 << 28) | (_field(op, 5, "op") << 23)
    word |= _field(sdst, 7, "sdst") << 16
    word |= _field(simm16 & 0xFFFF, 16, "simm16")
    return [word & WORD_MASK]


def unpack_sopk(word):
    return {
        "op": _bits(word, 27, 23),
        "sdst": _bits(word, 22, 16),
        "simm16": _bits(word, 15, 0),
    }


def pack_sop1(op, sdst, ssrc0):
    word = (0b101111101 << 23)
    word |= _field(sdst, 7, "sdst") << 16
    word |= _field(op, 8, "op") << 8
    word |= _field(ssrc0, 8, "ssrc0")
    return [word & WORD_MASK]


def unpack_sop1(word):
    return {
        "op": _bits(word, 15, 8),
        "sdst": _bits(word, 22, 16),
        "ssrc0": _bits(word, 7, 0),
    }


def pack_sopc(op, ssrc0, ssrc1):
    word = (0b101111110 << 23)
    word |= _field(op, 7, "op") << 16
    word |= _field(ssrc1, 8, "ssrc1") << 8
    word |= _field(ssrc0, 8, "ssrc0")
    return [word & WORD_MASK]


def unpack_sopc(word):
    return {
        "op": _bits(word, 22, 16),
        "ssrc1": _bits(word, 15, 8),
        "ssrc0": _bits(word, 7, 0),
    }


def pack_sopp(op, simm16=0):
    word = (0b101111111 << 23)
    word |= _field(op, 7, "op") << 16
    word |= _field(simm16 & 0xFFFF, 16, "simm16")
    return [word & WORD_MASK]


def unpack_sopp(word):
    return {"op": _bits(word, 22, 16), "simm16": _bits(word, 15, 0)}


def pack_smrd(op, sdst, sbase, offset, imm):
    """``sbase`` is the register-pair index (register number >> 1)."""
    word = (0b11000 << 27) | (_field(op, 5, "op") << 22)
    word |= _field(sdst, 7, "sdst") << 15
    word |= _field(sbase, 6, "sbase") << 9
    word |= _field(1 if imm else 0, 1, "imm") << 8
    word |= _field(offset, 8, "offset")
    return [word & WORD_MASK]


def unpack_smrd(word):
    return {
        "op": _bits(word, 26, 22),
        "sdst": _bits(word, 21, 15),
        "sbase": _bits(word, 14, 9),
        "imm": _bits(word, 8, 8),
        "offset": _bits(word, 7, 0),
    }


# ---------------------------------------------------------------------------
# Vector formats.
# ---------------------------------------------------------------------------

def pack_vop2(op, vdst, src0, vsrc1):
    # Opcodes 62/63 are the VOPC/VOP1 identifiers.
    if not 0 <= op < 62:
        raise EncodingError("VOP2 opcode out of range: {}".format(op))
    word = _field(op, 6, "op") << 25
    word |= _field(vdst, 8, "vdst") << 17
    word |= _field(vsrc1, 8, "vsrc1") << 9
    word |= _field(src0, 9, "src0")
    return [word & WORD_MASK]


def unpack_vop2(word):
    return {
        "op": _bits(word, 30, 25),
        "vdst": _bits(word, 24, 17),
        "vsrc1": _bits(word, 16, 9),
        "src0": _bits(word, 8, 0),
    }


def pack_vop1(op, vdst, src0):
    word = (0b0111111 << 25)
    word |= _field(vdst, 8, "vdst") << 17
    word |= _field(op, 8, "op") << 9
    word |= _field(src0, 9, "src0")
    return [word & WORD_MASK]


def unpack_vop1(word):
    return {
        "op": _bits(word, 16, 9),
        "vdst": _bits(word, 24, 17),
        "src0": _bits(word, 8, 0),
    }


def pack_vopc(op, src0, vsrc1):
    word = (0b0111110 << 25)
    word |= _field(op, 8, "op") << 17
    word |= _field(vsrc1, 8, "vsrc1") << 9
    word |= _field(src0, 9, "src0")
    return [word & WORD_MASK]


def unpack_vopc(word):
    return {
        "op": _bits(word, 24, 17),
        "vsrc1": _bits(word, 16, 9),
        "src0": _bits(word, 8, 0),
    }


def pack_vop3(op, vdst, src0, src1, src2=0, sdst=None, abs_=0, clamp=0, neg=0, omod=0):
    """VOP3a (``sdst is None``) or VOP3b (explicit scalar destination).

    VOP3 is also the promotion target for VOP2/VOPC instructions whose
    operands do not fit the compact encodings (e.g. a compare writing an
    SGPR pair as in Figure 5's ``V_CMP_GT_U32 s[14:15], v13, v4``); the
    assembler performs that promotion automatically via the opcode
    offsets in :data:`VOP3_VOP2_OFFSET` / :data:`VOP3_VOPC_OFFSET`.
    """
    word0 = (0b110100 << 26) | (_field(op, 9, "op") << 17)
    if sdst is None:
        word0 |= _field(clamp, 1, "clamp") << 11
        word0 |= _field(abs_, 3, "abs") << 8
    else:
        word0 |= _field(sdst, 7, "sdst") << 8
    word0 |= _field(vdst, 8, "vdst")
    word1 = _field(neg, 3, "neg") << 29
    word1 |= _field(omod, 2, "omod") << 27
    word1 |= _field(src2, 9, "src2") << 18
    word1 |= _field(src1, 9, "src1") << 9
    word1 |= _field(src0, 9, "src0")
    return [word0 & WORD_MASK, word1 & WORD_MASK]


def unpack_vop3(word0, word1, has_sdst=False):
    fields = {
        "op": _bits(word0, 25, 17),
        "vdst": _bits(word0, 7, 0),
        "src2": _bits(word1, 26, 18),
        "src1": _bits(word1, 17, 9),
        "src0": _bits(word1, 8, 0),
        "neg": _bits(word1, 31, 29),
        "omod": _bits(word1, 28, 27),
    }
    if has_sdst:
        fields["sdst"] = _bits(word0, 14, 8)
    else:
        fields["clamp"] = _bits(word0, 11, 11)
        fields["abs"] = _bits(word0, 10, 8)
    return fields


#: VOP2/VOPC opcodes are reachable through VOP3 at fixed offsets.
VOP3_VOPC_OFFSET = 0
VOP3_VOP2_OFFSET = 256
VOP3_VOP1_OFFSET = 384
VOP3_NATIVE_FIRST = 320  # opcodes >= 320 (and < 384) exist only as VOP3


# ---------------------------------------------------------------------------
# Memory formats (two words each).
# ---------------------------------------------------------------------------

def pack_ds(op, vdst, addr, data0=0, data1=0, offset0=0, offset1=0, gds=0):
    word0 = (0b110110 << 26) | (_field(op, 8, "op") << 18)
    word0 |= _field(gds, 1, "gds") << 17
    word0 |= _field(offset1, 8, "offset1") << 8
    word0 |= _field(offset0, 8, "offset0")
    word1 = _field(vdst, 8, "vdst") << 24
    word1 |= _field(data1, 8, "data1") << 16
    word1 |= _field(data0, 8, "data0") << 8
    word1 |= _field(addr, 8, "addr")
    return [word0 & WORD_MASK, word1 & WORD_MASK]


def unpack_ds(word0, word1):
    return {
        "op": _bits(word0, 25, 18),
        "gds": _bits(word0, 17, 17),
        "offset1": _bits(word0, 15, 8),
        "offset0": _bits(word0, 7, 0),
        "vdst": _bits(word1, 31, 24),
        "data1": _bits(word1, 23, 16),
        "data0": _bits(word1, 15, 8),
        "addr": _bits(word1, 7, 0),
    }


def pack_mubuf(op, vdata, vaddr, srsrc, soffset, offset=0, offen=0, idxen=0, glc=0):
    """``srsrc`` is the quad-register index (register number >> 2)."""
    word0 = (0b111000 << 26) | (_field(op, 7, "op") << 18)
    word0 |= _field(glc, 1, "glc") << 14
    word0 |= _field(idxen, 1, "idxen") << 13
    word0 |= _field(offen, 1, "offen") << 12
    word0 |= _field(offset, 12, "offset")
    word1 = _field(soffset, 8, "soffset") << 24
    word1 |= _field(srsrc, 5, "srsrc") << 16
    word1 |= _field(vdata, 8, "vdata") << 8
    word1 |= _field(vaddr, 8, "vaddr")
    return [word0 & WORD_MASK, word1 & WORD_MASK]


def unpack_mubuf(word0, word1):
    return {
        "op": _bits(word0, 24, 18),
        "glc": _bits(word0, 14, 14),
        "idxen": _bits(word0, 13, 13),
        "offen": _bits(word0, 12, 12),
        "offset": _bits(word0, 11, 0),
        "soffset": _bits(word1, 31, 24),
        "srsrc": _bits(word1, 20, 16),
        "vdata": _bits(word1, 15, 8),
        "vaddr": _bits(word1, 7, 0),
    }


def pack_mtbuf(op, vdata, vaddr, srsrc, soffset, offset=0, offen=0, idxen=0,
               dfmt=4, nfmt=4):
    """Typed buffer access; ``dfmt=4`` (32) ``nfmt=4`` (uint) by default."""
    word0 = (0b111010 << 26) | (_field(nfmt, 3, "nfmt") << 23)
    word0 |= _field(dfmt, 4, "dfmt") << 19
    word0 |= _field(op, 3, "op") << 16
    word0 |= _field(idxen, 1, "idxen") << 13
    word0 |= _field(offen, 1, "offen") << 12
    word0 |= _field(offset, 12, "offset")
    word1 = _field(soffset, 8, "soffset") << 24
    word1 |= _field(srsrc, 5, "srsrc") << 16
    word1 |= _field(vdata, 8, "vdata") << 8
    word1 |= _field(vaddr, 8, "vaddr")
    return [word0 & WORD_MASK, word1 & WORD_MASK]


def unpack_mtbuf(word0, word1):
    return {
        "op": _bits(word0, 18, 16),
        "nfmt": _bits(word0, 25, 23),
        "dfmt": _bits(word0, 22, 19),
        "idxen": _bits(word0, 13, 13),
        "offen": _bits(word0, 12, 12),
        "offset": _bits(word0, 11, 0),
        "soffset": _bits(word1, 31, 24),
        "srsrc": _bits(word1, 20, 16),
        "vdata": _bits(word1, 15, 8),
        "vaddr": _bits(word1, 7, 0),
    }


# ---------------------------------------------------------------------------
# Format classification of a fetched word.
# ---------------------------------------------------------------------------

def classify_word(word):
    """Identify which encoding format a 32-bit instruction word uses.

    Resolution order follows the SI identifier-bit hierarchy: 9-bit
    scalar identifiers are checked before the wider families that they
    specialise.
    """
    word &= WORD_MASK
    top9 = word >> 23
    if top9 == 0b101111101:
        return Format.SOP1
    if top9 == 0b101111110:
        return Format.SOPC
    if top9 == 0b101111111:
        return Format.SOPP
    if (word >> 28) == 0b1011:
        return Format.SOPK
    if (word >> 30) == 0b10:
        return Format.SOP2
    if (word >> 27) == 0b11000:
        return Format.SMRD
    top6 = word >> 26
    if top6 == 0b110100:
        return Format.VOP3
    if top6 == 0b110110:
        return Format.DS
    if top6 == 0b111000:
        return Format.MUBUF
    if top6 == 0b111010:
        return Format.MTBUF
    if (word >> 31) == 0:
        top7 = word >> 25
        if top7 == 0b0111111:
            return Format.VOP1
        if top7 == 0b0111110:
            return Format.VOPC
        return Format.VOP2
    raise DecodingError("word 0x{:08x} matches no Southern Islands format".format(word))
