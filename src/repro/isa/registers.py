"""Southern Islands operand and register encoding model.

A scalar source operand in the SI ISA is a single byte whose value
selects an SGPR, a special register, an inline constant, a literal
marker, or (in vector encodings, where the field is 9 bits) a VGPR.
This module implements that mapping exactly as the *Southern Islands
Series Instruction Set Architecture Reference Guide* defines it, since
the assembler, disassembler and trimming tool all consume real SI
operand codes.
"""

from __future__ import annotations

from ..errors import EncodingError, DecodingError

# ---------------------------------------------------------------------------
# Architectural limits (AMD Southern Islands / MIAOW compute unit).
# ---------------------------------------------------------------------------

#: Number of addressable scalar general-purpose registers.
NUM_SGPRS = 104
#: Number of addressable vector general-purpose registers.
NUM_VGPRS = 256
#: Work-items per wavefront; a VGPR is one 32-bit word per work-item.
WAVEFRONT_SIZE = 64
#: Wavefronts that may be resident in one compute unit (Section 2.1.1).
MAX_WAVEFRONTS = 40

# ---------------------------------------------------------------------------
# Scalar-operand byte codes (SI reference guide, "Scalar operands").
# ---------------------------------------------------------------------------

SGPR_FIRST = 0  # codes 0..103 select s0..s103
SGPR_LAST = NUM_SGPRS - 1

VCC_LO = 106
VCC_HI = 107
M0 = 124
EXEC_LO = 126
EXEC_HI = 127

CONST_ZERO = 128  # integer inline constants: 128 = 0,
INT_POS_FIRST = 129  # 129..192 = 1..64,
INT_POS_LAST = 192
INT_NEG_FIRST = 193  # 193..208 = -1..-16
INT_NEG_LAST = 208

#: Inline single-precision float constants (code -> value).
FLOAT_CONSTS = {
    240: 0.5,
    241: -0.5,
    242: 1.0,
    243: -1.0,
    244: 2.0,
    245: -2.0,
    246: 4.0,
    247: -4.0,
}

VCCZ = 251
EXECZ = 252
SCC = 253
LITERAL = 255  # a 32-bit literal dword follows the instruction

#: In 9-bit source fields (vector encodings), codes 256..511 are VGPRs.
VGPR_BASE = 256

#: Human-readable aliases accepted by the assembler for special codes.
SPECIAL_NAMES = {
    "vcc_lo": VCC_LO,
    "vcc_hi": VCC_HI,
    "m0": M0,
    "exec_lo": EXEC_LO,
    "exec_hi": EXEC_HI,
    "vccz": VCCZ,
    "execz": EXECZ,
    "scc": SCC,
}

_CODE_NAMES = {code: name for name, code in SPECIAL_NAMES.items()}


class Operand:
    """A parsed operand: one of sgpr/vgpr/special/inline/literal.

    Instances are small immutable value objects produced by the parser
    and consumed by the encoder; the simulator uses the already-encoded
    numeric codes instead (decoding is done once per program).
    """

    __slots__ = ("kind", "value", "count")

    SGPR = "sgpr"
    VGPR = "vgpr"
    SPECIAL = "special"
    INLINE = "inline"
    LITERAL = "literal"

    def __init__(self, kind, value, count=1):
        self.kind = kind
        self.value = value
        self.count = count  # register-pair/quad width (s[4:7] -> count 4)

    def __repr__(self):
        return "Operand({!r}, {!r}, count={})".format(self.kind, self.value, self.count)

    def __eq__(self, other):
        return (
            isinstance(other, Operand)
            and (self.kind, self.value, self.count)
            == (other.kind, other.value, other.count)
        )

    def __hash__(self):
        return hash((self.kind, self.value, self.count))


def sgpr(index, count=1):
    """Build an SGPR operand ``s<index>`` (or a pair/quad starting there)."""
    if not 0 <= index <= SGPR_LAST - (count - 1):
        raise EncodingError("SGPR index out of range: s{} (count {})".format(index, count))
    return Operand(Operand.SGPR, index, count)


def vgpr(index, count=1):
    """Build a VGPR operand ``v<index>``."""
    if not 0 <= index < NUM_VGPRS - (count - 1):
        raise EncodingError("VGPR index out of range: v{} (count {})".format(index, count))
    return Operand(Operand.VGPR, index, count)


def special(name):
    """Build a special-register operand (``vcc``, ``exec``, ``m0``, ...)."""
    lowered = name.lower()
    if lowered == "vcc":
        return Operand(Operand.SPECIAL, VCC_LO, 2)
    if lowered == "exec":
        return Operand(Operand.SPECIAL, EXEC_LO, 2)
    if lowered not in SPECIAL_NAMES:
        raise EncodingError("unknown special register: {!r}".format(name))
    return Operand(Operand.SPECIAL, SPECIAL_NAMES[lowered], 1)


def imm(value):
    """Build an immediate operand, inline if representable else literal.

    The SI encoder prefers inline constants because they do not consume
    an extra literal dword (which would also force the 64-bit encoding
    path in the fetch stage, Section 2.1.1).
    """
    if isinstance(value, float):
        for code, fval in FLOAT_CONSTS.items():
            if fval == value:
                return Operand(Operand.INLINE, code)
        import struct

        return Operand(Operand.LITERAL, struct.unpack("<I", struct.pack("<f", value))[0])
    value = int(value)
    if value == 0:
        return Operand(Operand.INLINE, CONST_ZERO)
    if 1 <= value <= 64:
        return Operand(Operand.INLINE, INT_POS_FIRST + value - 1)
    if -16 <= value <= -1:
        return Operand(Operand.INLINE, INT_NEG_FIRST + (-value) - 1)
    return Operand(Operand.LITERAL, value & 0xFFFFFFFF)


def encode_source(operand, width=9):
    """Encode an operand into an 8/9-bit SI source field.

    Returns ``(code, literal)`` where ``literal`` is the 32-bit dword to
    append after the instruction, or ``None``.
    """
    if operand.kind == Operand.SGPR:
        return operand.value, None
    if operand.kind == Operand.VGPR:
        if width < 9:
            raise EncodingError("VGPR operand not allowed in a scalar source field")
        return VGPR_BASE + operand.value, None
    if operand.kind in (Operand.SPECIAL, Operand.INLINE):
        return operand.value, None
    if operand.kind == Operand.LITERAL:
        return LITERAL, operand.value & 0xFFFFFFFF
    raise EncodingError("cannot encode operand {!r}".format(operand))


def decode_source(code):
    """Inverse of :func:`encode_source`: map a source code to an Operand.

    A ``LITERAL`` code decodes to a literal operand with value ``None``;
    the decoder fills the value in from the trailing dword.
    """
    if SGPR_FIRST <= code <= SGPR_LAST:
        return Operand(Operand.SGPR, code)
    if code >= VGPR_BASE:
        return Operand(Operand.VGPR, code - VGPR_BASE)
    if code in (VCC_LO, VCC_HI, M0, EXEC_LO, EXEC_HI, VCCZ, EXECZ, SCC):
        return Operand(Operand.SPECIAL, code)
    if code == CONST_ZERO or INT_POS_FIRST <= code <= INT_NEG_LAST:
        return Operand(Operand.INLINE, code)
    if code in FLOAT_CONSTS:
        return Operand(Operand.INLINE, code)
    if code == LITERAL:
        return Operand(Operand.LITERAL, None)
    raise DecodingError("invalid source operand code: {}".format(code))


def inline_value(code, as_float=False):
    """Resolve an inline-constant code to its numeric value.

    Integer inline constants are returned as Python ints; float inline
    constants as their IEEE-754 bit pattern unless ``as_float`` is set.
    """
    import struct

    if code == CONST_ZERO:
        return 0.0 if as_float else 0
    if INT_POS_FIRST <= code <= INT_POS_LAST:
        v = code - INT_POS_FIRST + 1
        return float(v) if as_float else v
    if INT_NEG_FIRST <= code <= INT_NEG_LAST:
        v = -(code - INT_NEG_FIRST + 1)
        return float(v) if as_float else v
    if code in FLOAT_CONSTS:
        f = FLOAT_CONSTS[code]
        if as_float:
            return f
        return struct.unpack("<I", struct.pack("<f", f))[0]
    raise DecodingError("code {} is not an inline constant".format(code))


def operand_name(operand):
    """Render an operand in assembly syntax (used by the disassembler)."""
    if operand.kind == Operand.SGPR:
        if operand.count == 1:
            return "s{}".format(operand.value)
        return "s[{}:{}]".format(operand.value, operand.value + operand.count - 1)
    if operand.kind == Operand.VGPR:
        if operand.count == 1:
            return "v{}".format(operand.value)
        return "v[{}:{}]".format(operand.value, operand.value + operand.count - 1)
    if operand.kind == Operand.SPECIAL:
        if operand.count == 2 and operand.value == VCC_LO:
            return "vcc"
        if operand.count == 2 and operand.value == EXEC_LO:
            return "exec"
        return _CODE_NAMES.get(operand.value, "special{}".format(operand.value))
    if operand.kind == Operand.INLINE:
        if operand.value in FLOAT_CONSTS:
            return repr(FLOAT_CONSTS[operand.value])
        return str(inline_value(operand.value))
    if operand.kind == Operand.LITERAL:
        if operand.value is None:
            return "<literal>"
        return "0x{:08x}".format(operand.value)
    return repr(operand)
