"""Instruction tables: the 156 MIAOW2.0 instructions + characterisation superset.

The table is organised by encoding format, mirroring how Section 2.3's
validation scripts were split into scalar / vector / memory programs.
Opcode values follow the Southern Islands reference guide.

The module-level :data:`ISA` registry is the single authoritative
instance used across the library; ``tests/isa/test_registry.py`` pins
the implemented-instruction count to exactly 156.
"""

from __future__ import annotations

from .categories import DataType, FunctionalUnit, OpCategory
from .formats import Format
from .instructions import InstructionSpec, Registry

ISA = Registry()

_INT = DataType.INT
_F32 = DataType.FP32
_F64 = DataType.FP64
_NONE = DataType.NONE

_SALU = FunctionalUnit.SALU
_SIMD = FunctionalUnit.SIMD
_SIMF = FunctionalUnit.SIMF
_LSU = FunctionalUnit.LSU
_BR = FunctionalUnit.BRANCH


def _add(name, fmt, opcode, unit, category, dtype=_INT, **kw):
    return ISA.add(
        InstructionSpec(
            name=name, fmt=fmt, opcode=opcode, unit=unit, category=category,
            dtype=dtype, **kw,
        )
    )


# ---------------------------------------------------------------------------
# SOP2 -- scalar, two sources (23 instructions).
# ---------------------------------------------------------------------------

for _op, _nm, _cat, _k in [
    (0, "s_add_u32", OpCategory.ADD, dict(writes_scc=True)),
    (1, "s_sub_u32", OpCategory.ADD, dict(writes_scc=True)),
    (2, "s_add_i32", OpCategory.ADD, dict(writes_scc=True)),
    (3, "s_sub_i32", OpCategory.ADD, dict(writes_scc=True)),
    (4, "s_addc_u32", OpCategory.ADD, dict(writes_scc=True, reads_scc=True)),
    (5, "s_subb_u32", OpCategory.ADD, dict(writes_scc=True, reads_scc=True)),
    (6, "s_min_i32", OpCategory.ADD, dict(writes_scc=True)),
    (7, "s_min_u32", OpCategory.ADD, dict(writes_scc=True)),
    (8, "s_max_i32", OpCategory.ADD, dict(writes_scc=True)),
    (9, "s_max_u32", OpCategory.ADD, dict(writes_scc=True)),
    (10, "s_cselect_b32", OpCategory.MOV, dict(reads_scc=True)),
    (14, "s_and_b32", OpCategory.LOGIC, dict(writes_scc=True)),
    (15, "s_and_b64", OpCategory.LOGIC, dict(writes_scc=True, op64=True)),
    (16, "s_or_b32", OpCategory.LOGIC, dict(writes_scc=True)),
    (17, "s_or_b64", OpCategory.LOGIC, dict(writes_scc=True, op64=True)),
    (18, "s_xor_b32", OpCategory.LOGIC, dict(writes_scc=True)),
    (19, "s_xor_b64", OpCategory.LOGIC, dict(writes_scc=True, op64=True)),
    (30, "s_lshl_b32", OpCategory.SHIFT, dict(writes_scc=True)),
    (32, "s_lshr_b32", OpCategory.SHIFT, dict(writes_scc=True)),
    (34, "s_ashr_i32", OpCategory.SHIFT, dict(writes_scc=True)),
    (38, "s_mul_i32", OpCategory.MUL, dict()),
    (39, "s_bfe_u32", OpCategory.SHIFT, dict(writes_scc=True)),
    (40, "s_bfe_i32", OpCategory.SHIFT, dict(writes_scc=True)),
]:
    _add(_nm, Format.SOP2, _op, _SALU, _cat, _INT, **_k)

# ---------------------------------------------------------------------------
# SOPK -- scalar with 16-bit immediate (3 instructions).
# ---------------------------------------------------------------------------

_add("s_movk_i32", Format.SOPK, 0, _SALU, OpCategory.MOV, _INT, num_srcs=1)
_add("s_addk_i32", Format.SOPK, 15, _SALU, OpCategory.ADD, _INT, num_srcs=1,
     writes_scc=True)
_add("s_mulk_i32", Format.SOPK, 16, _SALU, OpCategory.MUL, _INT, num_srcs=1)

# ---------------------------------------------------------------------------
# SOP1 -- scalar, one source (12 instructions).
# ---------------------------------------------------------------------------

for _op, _nm, _cat, _k in [
    (3, "s_mov_b32", OpCategory.MOV, dict()),
    (4, "s_mov_b64", OpCategory.MOV, dict(op64=True)),
    (7, "s_not_b32", OpCategory.LOGIC, dict(writes_scc=True)),
    (8, "s_not_b64", OpCategory.LOGIC, dict(writes_scc=True, op64=True)),
    (11, "s_brev_b32", OpCategory.BITWISE, dict()),
    (15, "s_bcnt1_i32_b32", OpCategory.BITWISE, dict(writes_scc=True)),
    (19, "s_ff1_i32_b32", OpCategory.BITWISE, dict()),
    (21, "s_flbit_i32_b32", OpCategory.BITWISE, dict()),
    (25, "s_sext_i32_i8", OpCategory.CONVERT, dict()),
    (26, "s_sext_i32_i16", OpCategory.CONVERT, dict()),
    (36, "s_and_saveexec_b64", OpCategory.CONTROL,
     dict(op64=True, writes_scc=True)),
    (37, "s_or_saveexec_b64", OpCategory.CONTROL,
     dict(op64=True, writes_scc=True)),
]:
    _add(_nm, Format.SOP1, _op, _SALU, _cat, _INT, num_srcs=1, **_k)

# ---------------------------------------------------------------------------
# SOPC -- scalar compares (12 instructions).  Arithmetic compares fall in
# the ADD category per the Section 3.1 taxonomy.
# ---------------------------------------------------------------------------

for _op, _nm in [
    (0, "s_cmp_eq_i32"), (1, "s_cmp_lg_i32"), (2, "s_cmp_gt_i32"),
    (3, "s_cmp_ge_i32"), (4, "s_cmp_lt_i32"), (5, "s_cmp_le_i32"),
    (6, "s_cmp_eq_u32"), (7, "s_cmp_lg_u32"), (8, "s_cmp_gt_u32"),
    (9, "s_cmp_ge_u32"), (10, "s_cmp_lt_u32"), (11, "s_cmp_le_u32"),
]:
    _add(_nm, Format.SOPC, _op, _SALU, OpCategory.ADD, _INT, writes_scc=True)

# ---------------------------------------------------------------------------
# SOPP -- program control (11 instructions), handled by the Branch &
# Message decode path (Figure 2); barrier/halt are consumed directly by
# the Issue stage (Section 2.1.1).
# ---------------------------------------------------------------------------

for _op, _nm, _k in [
    (0, "s_nop", {}),
    (1, "s_endpgm", {}),
    (2, "s_branch", {}),
    (4, "s_cbranch_scc0", dict(reads_scc=True)),
    (5, "s_cbranch_scc1", dict(reads_scc=True)),
    (6, "s_cbranch_vccz", dict(reads_vcc=True)),
    (7, "s_cbranch_vccnz", dict(reads_vcc=True)),
    (8, "s_cbranch_execz", {}),
    (9, "s_cbranch_execnz", {}),
    (10, "s_barrier", {}),
    (12, "s_waitcnt", {}),
]:
    _add(_nm, Format.SOPP, _op, _BR, OpCategory.CONTROL, _NONE, num_srcs=0, **_k)

# ---------------------------------------------------------------------------
# SMRD -- scalar memory reads (6 instructions).
# ---------------------------------------------------------------------------

for _op, _nm in [
    (0, "s_load_dword"), (1, "s_load_dwordx2"), (2, "s_load_dwordx4"),
    (8, "s_buffer_load_dword"), (9, "s_buffer_load_dwordx2"),
    (10, "s_buffer_load_dwordx4"),
]:
    _add(_nm, Format.SMRD, _op, _LSU, OpCategory.MEMORY, _NONE, num_srcs=1)

# ---------------------------------------------------------------------------
# VOP2 -- vector, two sources (27 instructions).
# ---------------------------------------------------------------------------

for _op, _nm, _unit, _cat, _dt, _k in [
    (0, "v_cndmask_b32", _SIMD, OpCategory.LOGIC, _INT, dict(reads_vcc=True)),
    (3, "v_add_f32", _SIMF, OpCategory.ADD, _F32, {}),
    (4, "v_sub_f32", _SIMF, OpCategory.ADD, _F32, {}),
    (5, "v_subrev_f32", _SIMF, OpCategory.ADD, _F32, {}),
    (8, "v_mul_f32", _SIMF, OpCategory.MUL, _F32, {}),
    (9, "v_mul_i32_i24", _SIMD, OpCategory.MUL, _INT, {}),
    (15, "v_min_f32", _SIMF, OpCategory.ADD, _F32, {}),
    (16, "v_max_f32", _SIMF, OpCategory.ADD, _F32, {}),
    (17, "v_min_i32", _SIMD, OpCategory.ADD, _INT, {}),
    (18, "v_max_i32", _SIMD, OpCategory.ADD, _INT, {}),
    (19, "v_min_u32", _SIMD, OpCategory.ADD, _INT, {}),
    (20, "v_max_u32", _SIMD, OpCategory.ADD, _INT, {}),
    (21, "v_lshr_b32", _SIMD, OpCategory.SHIFT, _INT, {}),
    (22, "v_lshrrev_b32", _SIMD, OpCategory.SHIFT, _INT, {}),
    (23, "v_ashr_i32", _SIMD, OpCategory.SHIFT, _INT, {}),
    (24, "v_ashrrev_i32", _SIMD, OpCategory.SHIFT, _INT, {}),
    (25, "v_lshl_b32", _SIMD, OpCategory.SHIFT, _INT, {}),
    (26, "v_lshlrev_b32", _SIMD, OpCategory.SHIFT, _INT, {}),
    (27, "v_and_b32", _SIMD, OpCategory.LOGIC, _INT, {}),
    (28, "v_or_b32", _SIMD, OpCategory.LOGIC, _INT, {}),
    (29, "v_xor_b32", _SIMD, OpCategory.LOGIC, _INT, {}),
    (31, "v_mac_f32", _SIMF, OpCategory.MUL, _F32, {}),
    (37, "v_add_i32", _SIMD, OpCategory.ADD, _INT, dict(writes_vcc=True)),
    (38, "v_sub_i32", _SIMD, OpCategory.ADD, _INT, dict(writes_vcc=True)),
    (39, "v_subrev_i32", _SIMD, OpCategory.ADD, _INT, dict(writes_vcc=True)),
    (40, "v_addc_u32", _SIMD, OpCategory.ADD, _INT,
     dict(writes_vcc=True, reads_vcc=True)),
    (41, "v_subb_u32", _SIMD, OpCategory.ADD, _INT,
     dict(writes_vcc=True, reads_vcc=True)),
]:
    _add(_nm, Format.VOP2, _op, _unit, _cat, _dt, **_k)

# ---------------------------------------------------------------------------
# VOP1 -- vector, one source (19 instructions).
# ---------------------------------------------------------------------------

for _op, _nm, _unit, _cat, _dt, _k in [
    (1, "v_mov_b32", _SIMD, OpCategory.MOV, _INT, {}),
    (5, "v_cvt_f32_i32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (6, "v_cvt_f32_u32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (7, "v_cvt_u32_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (8, "v_cvt_i32_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (32, "v_fract_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (33, "v_trunc_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (34, "v_ceil_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (35, "v_rndne_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (36, "v_floor_f32", _SIMF, OpCategory.CONVERT, _F32, {}),
    (37, "v_exp_f32", _SIMF, OpCategory.TRANS, _F32, dict(trans_rate=True)),
    (39, "v_log_f32", _SIMF, OpCategory.TRANS, _F32, dict(trans_rate=True)),
    (42, "v_rcp_f32", _SIMF, OpCategory.DIV, _F32, dict(trans_rate=True)),
    (46, "v_rsq_f32", _SIMF, OpCategory.TRANS, _F32, dict(trans_rate=True)),
    (51, "v_sqrt_f32", _SIMF, OpCategory.TRANS, _F32, dict(trans_rate=True)),
    (53, "v_sin_f32", _SIMF, OpCategory.TRANS, _F32, dict(trans_rate=True)),
    (54, "v_cos_f32", _SIMF, OpCategory.TRANS, _F32, dict(trans_rate=True)),
    (55, "v_not_b32", _SIMD, OpCategory.LOGIC, _INT, {}),
    (56, "v_bfrev_b32", _SIMD, OpCategory.BITWISE, _INT, {}),
]:
    _add(_nm, Format.VOP1, _op, _unit, _cat, _dt, num_srcs=1, **_k)

# ---------------------------------------------------------------------------
# VOPC -- vector compares (18 instructions).  All write VCC (or an SGPR
# pair via the VOP3b promotion).  F32 compares execute on the SIMF.
# ---------------------------------------------------------------------------

_CMP_NAMES = ["lt", "eq", "le", "gt", "lg", "ge"]
for _i, _cm in enumerate(_CMP_NAMES):
    _add("v_cmp_{}_f32".format(_cm), Format.VOPC, 1 + _i, _SIMF,
         OpCategory.ADD, _F32, writes_vcc=True)
for _i, _cm in enumerate(_CMP_NAMES):
    _add("v_cmp_{}_i32".format(_cm), Format.VOPC, 0x81 + _i, _SIMD,
         OpCategory.ADD, _INT, writes_vcc=True)
for _i, _cm in enumerate(_CMP_NAMES):
    _add("v_cmp_{}_u32".format(_cm), Format.VOPC, 0xC1 + _i, _SIMD,
         OpCategory.ADD, _INT, writes_vcc=True)

# ---------------------------------------------------------------------------
# VOP3-native -- three-source vector ops (11 instructions).
# ---------------------------------------------------------------------------

for _op, _nm, _unit, _cat, _dt, _ns in [
    (321, "v_mad_f32", _SIMF, OpCategory.MUL, _F32, 3),
    (322, "v_mad_i32_i24", _SIMD, OpCategory.MUL, _INT, 3),
    (328, "v_bfe_u32", _SIMD, OpCategory.SHIFT, _INT, 3),
    (329, "v_bfe_i32", _SIMD, OpCategory.SHIFT, _INT, 3),
    (330, "v_bfi_b32", _SIMD, OpCategory.LOGIC, _INT, 3),
    (331, "v_fma_f32", _SIMF, OpCategory.MUL, _F32, 3),
    (334, "v_alignbit_b32", _SIMD, OpCategory.SHIFT, _INT, 3),
    (357, "v_mul_lo_u32", _SIMD, OpCategory.MUL, _INT, 2),
    (358, "v_mul_hi_u32", _SIMD, OpCategory.MUL, _INT, 2),
    (359, "v_mul_lo_i32", _SIMD, OpCategory.MUL, _INT, 2),
    (360, "v_mul_hi_i32", _SIMD, OpCategory.MUL, _INT, 2),
]:
    _add(_nm, Format.VOP3, _op, _unit, _cat, _dt, num_srcs=_ns)

# ---------------------------------------------------------------------------
# DS -- local data share (5 instructions).
# ---------------------------------------------------------------------------

for _op, _nm in [
    (0, "ds_add_u32"), (13, "ds_write_b32"), (14, "ds_write2_b32"),
    (54, "ds_read_b32"), (55, "ds_read2_b32"),
]:
    _add(_nm, Format.DS, _op, _LSU, OpCategory.MEMORY, _NONE, num_srcs=1)

# ---------------------------------------------------------------------------
# MUBUF -- untyped buffer access (5 instructions).  The byte loads and
# stores are what the INT8 NIN variant leans on (Section 4.2).
# ---------------------------------------------------------------------------

for _op, _nm in [
    (8, "buffer_load_ubyte"), (9, "buffer_load_sbyte"),
    (12, "buffer_load_dword"), (24, "buffer_store_byte"),
    (28, "buffer_store_dword"),
]:
    _add(_nm, Format.MUBUF, _op, _LSU, OpCategory.MEMORY, _NONE, num_srcs=1)

# ---------------------------------------------------------------------------
# MTBUF -- typed buffer access (4 instructions), the load/store flavour
# AMD's OpenCL compiler emits for global arrays (Figure 5).
# ---------------------------------------------------------------------------

for _op, _nm in [
    (0, "tbuffer_load_format_x"), (1, "tbuffer_load_format_xy"),
    (4, "tbuffer_store_format_x"), (5, "tbuffer_store_format_xy"),
]:
    _add(_nm, Format.MTBUF, _op, _LSU, OpCategory.MEMORY, _NONE, num_srcs=1)

# ---------------------------------------------------------------------------
# Characterisation superset (implemented=False): instructions the
# Figure 4 analysis must classify but MIAOW2.0 does not synthesise.
# Dominated by double-precision arithmetic, exactly the gap the paper
# worked around with Multi2Sim.
# ---------------------------------------------------------------------------

for _op, _nm, _cat, _k in [
    (100, "v_add_f64", OpCategory.ADD, dict(num_srcs=2)),
    (101, "v_mul_f64", OpCategory.MUL, dict(num_srcs=2)),
    (102, "v_min_f64", OpCategory.ADD, dict(num_srcs=2)),
    (103, "v_max_f64", OpCategory.ADD, dict(num_srcs=2)),
    (104, "v_fma_f64", OpCategory.MUL, dict(num_srcs=3)),
    (105, "v_rcp_f64", OpCategory.DIV, dict(num_srcs=1, trans_rate=True)),
    (106, "v_rsq_f64", OpCategory.TRANS, dict(num_srcs=1, trans_rate=True)),
    (107, "v_sqrt_f64", OpCategory.TRANS, dict(num_srcs=1, trans_rate=True)),
    (108, "v_cvt_f64_f32", OpCategory.CONVERT, dict(num_srcs=1)),
    (109, "v_cvt_f32_f64", OpCategory.CONVERT, dict(num_srcs=1)),
    (110, "v_cvt_f64_i32", OpCategory.CONVERT, dict(num_srcs=1)),
    (111, "v_cvt_i32_f64", OpCategory.CONVERT, dict(num_srcs=1)),
]:
    _add(_nm, Format.VOP3, 384 + _op, _SIMF, _cat, _F64, op64=True,
         implemented=False, **_k)

for _op, _nm, _unit, _cat, _dt, _k in [
    (323, "v_mad_u32_u24", _SIMD, OpCategory.MUL, _INT, dict(num_srcs=3)),
    (345, "v_med3_i32", _SIMD, OpCategory.ADD, _INT, dict(num_srcs=3)),
]:
    _add(_nm, Format.VOP3, _op, _unit, _cat, _dt, implemented=False, **_k)

_add("v_ffbh_u32", Format.VOP1, 57, _SIMD, OpCategory.BITWISE, _INT,
     num_srcs=1, implemented=False)
_add("v_ffbl_b32", Format.VOP1, 58, _SIMD, OpCategory.BITWISE, _INT,
     num_srcs=1, implemented=False)
_add("s_bcnt0_i32_b32", Format.SOP1, 13, _SALU, OpCategory.BITWISE, _INT,
     num_srcs=1, writes_scc=True, implemented=False)


def spec(name):
    """Shorthand for :meth:`Registry.by_name` on the module registry."""
    return ISA.by_name(name)
