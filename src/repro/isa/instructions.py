"""The MIAOW2.0 instruction registry.

MIAOW2.0 extends the original MIAOW synthesizable design from 42 to a
set of **156 fully usable instructions** of the AMD Southern Islands
ISA (paper abstract and Section 2.1.3).  This module defines the
:class:`InstructionSpec` metadata record and the :class:`Registry` that
holds the full set; the actual tables live in :mod:`repro.isa.tables`.

Every downstream consumer keys off this registry:

* the assembler/disassembler use the (format, opcode) mapping,
* the compute-unit decode stage selects the functional unit,
* the SCRATCH trimming tool builds its per-unit instruction histograms
  from the ``unit``/``category``/``dtype`` attributes (Algorithm 1),
* the FPGA area model prices each instruction's decode+execute logic
  from its ``category`` and ``dtype``.

The registry also carries a small *characterisation superset* of
instructions (double-precision arithmetic among them) that MIAOW2.0
does **not** implement.  The paper needed Multi2Sim for exactly this
reason when producing Figure 4 ("used to guarantee full support to all
instructions including double-precision floating-point"); here the
superset entries are decodable and classifiable but flagged
``implemented=False`` and will trap if executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IsaError
from .categories import DataType, FunctionalUnit, OpCategory
from .formats import Format, VOP3_VOP2_OFFSET, VOP3_VOPC_OFFSET

#: Number of Southern Islands instructions MIAOW2.0 implements.
MIAOW2_INSTRUCTION_COUNT = 156
#: Number of instructions the original synthesizable MIAOW supported.
ORIGINAL_MIAOW_INSTRUCTION_COUNT = 42


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one ISA instruction.

    ``op64`` marks instructions whose register operands are 64-bit
    pairs (``s_mov_b64`` and friends).  ``reads_vcc``/``writes_vcc``
    cover the implicit VCC traffic of the VOP2 carry/borrow and compare
    instructions.  ``trans_rate`` marks quarter-rate transcendental and
    divide operations, which occupy a vector ALU for four times as many
    passes as a simple op (the execute-stage timing model uses this).
    """

    name: str
    fmt: Format
    opcode: int
    unit: FunctionalUnit
    category: OpCategory
    dtype: DataType = DataType.INT
    num_srcs: int = 2
    op64: bool = False
    reads_scc: bool = False
    writes_scc: bool = False
    reads_vcc: bool = False
    writes_vcc: bool = False
    sdst_width: int = 0  # explicit scalar destination width (VOP3b / saveexec)
    trans_rate: bool = False
    implemented: bool = True
    notes: str = ""

    @property
    def is_memory(self):
        return self.category is OpCategory.MEMORY

    @property
    def is_branch(self):
        return self.unit is FunctionalUnit.BRANCH

    @property
    def is_vector(self):
        return self.unit.is_vector

    def __str__(self):
        return self.name


class Registry:
    """Lookup structure over the instruction set.

    Instructions are addressable by mnemonic and by ``(format,
    opcode)``.  VOP2/VOPC instructions are *also* reachable through
    their VOP3 promotion opcodes, mirroring the hardware decode paths.
    """

    def __init__(self):
        self._by_name = {}
        self._by_encoding = {}

    def add(self, spec):
        if spec.name in self._by_name:
            raise IsaError("duplicate instruction name: {}".format(spec.name))
        key = (spec.fmt, spec.opcode)
        if key in self._by_encoding:
            raise IsaError("duplicate encoding {}/{}".format(spec.fmt, spec.opcode))
        self._by_name[spec.name] = spec
        self._by_encoding[key] = spec
        # VOP2/VOPC are reachable through VOP3 at fixed opcode offsets.
        if spec.fmt is Format.VOP2:
            self._by_encoding[(Format.VOP3, spec.opcode + VOP3_VOP2_OFFSET)] = spec
        elif spec.fmt is Format.VOPC:
            self._by_encoding[(Format.VOP3, spec.opcode + VOP3_VOPC_OFFSET)] = spec
        return spec

    def by_name(self, name):
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise IsaError("unknown instruction: {!r}".format(name)) from None

    def __contains__(self, name):
        return name.lower() in self._by_name

    def by_encoding(self, fmt, opcode):
        try:
            return self._by_encoding[(fmt, opcode)]
        except KeyError:
            raise IsaError(
                "no instruction with format {} opcode {}".format(fmt.value, opcode)
            ) from None

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self):
        return len(self._by_name)

    def vop3_opcode(self, spec):
        """The opcode used when a VOP2/VOPC instruction is VOP3-encoded."""
        if spec.fmt is Format.VOP2:
            return spec.opcode + VOP3_VOP2_OFFSET
        if spec.fmt is Format.VOPC:
            return spec.opcode + VOP3_VOPC_OFFSET
        if spec.fmt is Format.VOP3:
            return spec.opcode
        raise IsaError("{} has no VOP3 encoding".format(spec.name))

    def implemented(self):
        """The instructions MIAOW2.0 actually implements (the 156)."""
        return [s for s in self if s.implemented]

    def superset_only(self):
        """Characterisation-only instructions (Figure 4 analysis)."""
        return [s for s in self if not s.implemented]

    def for_unit(self, unit):
        """All implemented instructions dispatched to ``unit``."""
        return [s for s in self.implemented() if s.unit is unit]
