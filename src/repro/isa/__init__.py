"""Southern Islands ISA model: formats, registers, the 156-instruction set."""

from .categories import DataType, FunctionalUnit, OpCategory
from .decode import DecodedInstruction, decode_one, decode_program
from .formats import Format, classify_word
from .instructions import (
    InstructionSpec,
    MIAOW2_INSTRUCTION_COUNT,
    ORIGINAL_MIAOW_INSTRUCTION_COUNT,
    Registry,
)
from .registers import (
    MAX_WAVEFRONTS,
    NUM_SGPRS,
    NUM_VGPRS,
    WAVEFRONT_SIZE,
    Operand,
    imm,
    sgpr,
    special,
    vgpr,
)
from .tables import ISA, spec

__all__ = [
    "DataType", "FunctionalUnit", "OpCategory", "Format", "classify_word",
    "DecodedInstruction", "decode_one", "decode_program",
    "InstructionSpec", "Registry", "ISA", "spec",
    "MIAOW2_INSTRUCTION_COUNT", "ORIGINAL_MIAOW_INSTRUCTION_COUNT",
    "MAX_WAVEFRONTS", "NUM_SGPRS", "NUM_VGPRS", "WAVEFRONT_SIZE",
    "Operand", "imm", "sgpr", "special", "vgpr",
]
