"""Binary decoder: Southern Islands machine words -> decoded instructions.

This is the software twin of the MIAOW2.0 Decode stage (Section 2.1.1):
it classifies the fetched word's format, extracts the operation and the
operand fields, determines the executing functional unit from the
instruction registry, and notes whether a trailing 32-bit literal makes
the instruction a two-fetch (64-bit) one.

It is used in three places:

* the compute-unit simulator decodes a program once and caches the
  result (hardware decodes every issue; the cycle model charges for
  decode regardless),
* the disassembler renders decoded instructions back to text,
* the SCRATCH trimming tool's first step (Algorithm 1 lines 2-11) walks
  a kernel binary with exactly this decoder -- ``miaow.decode(line)`` in
  the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DecodingError
from . import formats
from .formats import Format
from .registers import LITERAL
from .tables import ISA


@dataclass
class DecodedInstruction:
    """One decoded instruction occurrence within a program.

    ``fields`` holds the raw encoding fields (register codes, opcode,
    immediates); ``literal`` the trailing literal dword if one was
    fetched; ``words`` the total dword footprint (the fetch stage needs
    two fetches when ``words > 1``, Section 2.1.1); ``address`` the
    byte offset within the program.
    """

    spec: "InstructionSpec"
    fmt: Format
    fields: dict
    literal: Optional[int]
    words: int
    address: int = 0

    @property
    def name(self):
        return self.spec.name

    @property
    def unit(self):
        return self.spec.unit

    def __str__(self):
        return "{:06x}: {}".format(self.address, self.spec.name)


_UNPACKERS_1W = {
    Format.SOP2: formats.unpack_sop2,
    Format.SOPK: formats.unpack_sopk,
    Format.SOP1: formats.unpack_sop1,
    Format.SOPC: formats.unpack_sopc,
    Format.SOPP: formats.unpack_sopp,
    Format.SMRD: formats.unpack_smrd,
    Format.VOP2: formats.unpack_vop2,
    Format.VOP1: formats.unpack_vop1,
    Format.VOPC: formats.unpack_vopc,
}

_UNPACKERS_2W = {
    Format.DS: formats.unpack_ds,
    Format.MUBUF: formats.unpack_mubuf,
    Format.MTBUF: formats.unpack_mtbuf,
}

#: Source-field names checked for the literal-constant marker, by format.
_SRC_FIELDS = {
    Format.SOP2: ("ssrc0", "ssrc1"),
    Format.SOP1: ("ssrc0",),
    Format.SOPC: ("ssrc0", "ssrc1"),
    Format.VOP2: ("src0",),
    Format.VOP1: ("src0",),
    Format.VOPC: ("src0",),
    Format.VOP3: ("src0", "src1", "src2"),
}


def _uses_literal(fmt, fields):
    for fname in _SRC_FIELDS.get(fmt, ()):
        if fields.get(fname) == LITERAL:
            return True
    return False


def decode_one(words, offset, registry=ISA):
    """Decode the instruction starting at ``words[offset]``.

    Returns a :class:`DecodedInstruction` whose ``address`` is the byte
    offset ``offset * 4``.  Raises :class:`DecodingError` when the word
    stream ends mid-instruction or encodes an unknown operation.
    """
    if offset >= len(words):
        raise DecodingError("decode past end of program")
    word0 = words[offset] & 0xFFFFFFFF
    fmt = formats.classify_word(word0)
    consumed = fmt.base_words
    if offset + consumed > len(words):
        raise DecodingError(
            "truncated {} instruction at word {}".format(fmt.value, offset)
        )

    if fmt in _UNPACKERS_1W:
        fields = _UNPACKERS_1W[fmt](word0)
    elif fmt is Format.VOP3:
        # VOP3b (explicit sdst) applies to carry ops and compares; the
        # registry decides after the opcode lookup, so unpack both ways.
        fields = formats.unpack_vop3(word0, words[offset + 1], has_sdst=False)
    else:
        fields = _UNPACKERS_2W[fmt](word0, words[offset + 1])

    try:
        sp = registry.by_encoding(fmt, fields["op"])
    except Exception as exc:
        raise DecodingError(
            "word 0x{:08x} at offset {}: {}".format(word0, offset, exc)
        ) from None

    if fmt is Format.VOP3 and (sp.sdst_width or sp.writes_vcc):
        fields = formats.unpack_vop3(word0, words[offset + 1], has_sdst=True)
        fields["op"] = fields["op"]

    literal = None
    if _uses_literal(fmt, fields):
        if offset + consumed >= len(words):
            raise DecodingError(
                "missing literal dword after {} at word {}".format(sp.name, offset)
            )
        literal = words[offset + consumed] & 0xFFFFFFFF
        consumed += 1

    return DecodedInstruction(
        spec=sp, fmt=fmt, fields=fields, literal=literal,
        words=consumed, address=offset * 4,
    )


def decode_program(words, registry=ISA):
    """Decode a whole binary into a list of :class:`DecodedInstruction`.

    The list is in program order; jump targets are byte addresses, so
    the simulator indexes instructions through an address map built by
    the caller (see :class:`repro.asm.program.Program`).
    """
    decoded = []
    offset = 0
    while offset < len(words):
        inst = decode_one(words, offset, registry)
        decoded.append(inst)
        offset += inst.words
    return decoded
