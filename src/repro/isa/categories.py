"""Instruction taxonomy used throughout the SCRATCH framework.

The paper classifies every executed instruction along three axes
(Section 3.1, Figure 4):

* the **functional unit** that executes it (scalar ALU, integer vector
  ALU a.k.a. SIMD, floating-point vector ALU a.k.a. SIMF, load/store
  unit, or the branch & message unit),
* the **computational category** (mov, logic, shift, bitwise, convert,
  control, add, mul, div, trans, memory),
* the **numeric type** (integer, single-precision FP, double-precision
  FP -- the latter only exists in the characterisation superset, not in
  the 156 instructions MIAOW2.0 implements).

These enums are the vocabulary shared by the ISA registry, the
decode/issue stages of the compute-unit model, the trimming tool and
the area/power models.
"""

from __future__ import annotations

import enum


class FunctionalUnit(enum.Enum):
    """Execution unit selected by the Decode stage for an instruction.

    Mirrors the four decode paths of Figure 2 (Branch & Message, Scalar,
    Vector, LD/ST) with the vector path split into its integer (SIMD)
    and floating-point (SIMF) halves, because SCRATCH trims those two
    independently -- removing the whole SIMF block is the single largest
    win for integer-only kernels (Section 3.2).
    """

    BRANCH = "branch"
    SALU = "salu"
    SIMD = "simd"  # integer vector ALU
    SIMF = "simf"  # floating-point vector ALU
    LSU = "lsu"

    @property
    def is_vector(self):
        return self in (FunctionalUnit.SIMD, FunctionalUnit.SIMF)

    @property
    def trimmable(self):
        """Whether SCRATCH may remove this unit entirely.

        The branch/message path implements control flow that every
        kernel needs (``s_endpgm`` at minimum), so it is never removed.
        """
        return self is not FunctionalUnit.BRANCH


class OpCategory(enum.Enum):
    """Computational categories of Section 3.1 / Figure 4.

    The paper's definitions, restated:

    * ``MOV``     register-to-register moves (and immediate moves).
    * ``LOGIC``   bit masks and bit compares: and/or/xor/not, bit-field
                  insert, conditional mask selection.
    * ``SHIFT``   shifts and rotates, including bit-field extracts and
                  funnel shifts (``v_alignbit``).
    * ``BITWISE`` bit search and bit count (ff1, flbit, bcnt, brev).
    * ``CONVERT`` numeric format conversions (cvt, sext, floor/ceil,
                  fract and friends).
    * ``CONTROL`` control and communication operations, excluding logic
                  and arithmetic compares: branches, barriers, waitcnt,
                  exec-mask save/restore.
    * ``ADD``     addition, subtraction **and compare** (min/max too,
                  which hardware builds from a compare + select).
    * ``MUL``     multiplication with or without a subsequent add
                  (mul, mad, fma, mac).
    * ``DIV``     divides and reciprocals.
    * ``TRANS``   transcendentals: sin, cos, exp, log, sqrt, rsq.
    * ``MEMORY``  loads and stores of every flavour (Figure 4 group G).
    """

    MOV = "mov"
    LOGIC = "logic"
    SHIFT = "shift"
    BITWISE = "bitwise"
    CONVERT = "convert"
    CONTROL = "control"
    ADD = "add"
    MUL = "mul"
    DIV = "div"
    TRANS = "trans"
    MEMORY = "memory"


#: Figure 4 groups the eleven categories into seven lettered bars.
#: A: binary/logic/shift, B/C/D: arithmetic per numeric type,
#: E: conversions, F: control, G: memory.
FIGURE4_GROUPS = {
    "A": (OpCategory.MOV, OpCategory.LOGIC, OpCategory.SHIFT, OpCategory.BITWISE),
    "B": (OpCategory.ADD, OpCategory.MUL, OpCategory.DIV, OpCategory.TRANS),
    "C": (OpCategory.ADD, OpCategory.MUL, OpCategory.DIV, OpCategory.TRANS),
    "D": (OpCategory.ADD, OpCategory.MUL, OpCategory.DIV, OpCategory.TRANS),
    "E": (OpCategory.CONVERT,),
    "F": (OpCategory.CONTROL,),
    "G": (OpCategory.MEMORY,),
}

#: Categories whose hardware is comparatively expensive; used by the
#: area model to weight per-instruction trimming savings.
ARITHMETIC_CATEGORIES = frozenset(
    {OpCategory.ADD, OpCategory.MUL, OpCategory.DIV, OpCategory.TRANS}
)


class DataType(enum.Enum):
    """Numeric type an instruction operates on.

    ``NONE`` marks instructions with no arithmetic payload (branches,
    barriers, raw moves of untyped bits).  ``FP64`` only appears in the
    characterisation superset used to reproduce Figure 4 -- MIAOW2.0's
    156 implemented instructions are integer and single-precision only.
    """

    NONE = "none"
    INT = "int"
    FP32 = "fp32"
    FP64 = "fp64"

    @property
    def is_float(self):
        return self in (DataType.FP32, DataType.FP64)
