"""repro.obs: the unified observability subsystem.

Three pieces, one event stream:

* **Counters** -- :class:`PerfCounters` fills a hierarchical
  :class:`CounterSet` with stall-attributed cycle accounting, per-unit
  issue histograms, prefetch hit/miss, LDS traffic and occupancy.
* **Traces** -- :class:`~repro.cu.trace.ExecutionTracer` records
  per-instruction events; :class:`ChromeTrace` exports the whole run
  (spans + instructions + stalls) as Chrome trace-event JSON for
  chrome://tracing / Perfetto.
* **Surface** -- ``repro profile <kernel>`` (see
  :func:`profile_kernel`), and one ``to_dict()``/``to_json()``
  serialization convention (:mod:`repro.obs.serialize`) shared by
  every result object the toolchain emits.

Observation is requested through the execution layer -- the executor
attaches counters/trace for the run and detaches them before the board
returns to the pool::

    from repro.exec import ExecutionRequest, execute

    result = execute(ExecutionRequest(benchmark="matrix_add_i32",
                                      profile=True, trace=True))
    print(result.counters.render())
    result.trace.write("out.json")

(Custom observers go in ``ExecutionRequest(observers=(...,))``; the
low-level ``device.attach``/``device.detach`` API remains for code
that owns a raw board.)

With no observer attached, every hook point in the simulator is a
single ``if obs is not None`` guard -- the instrumentation is free
when unused (pinned by ``benchmarks/test_obs_overhead.py``).
"""

from .chrome_trace import ChromeTrace, validate_chrome_trace
from .counters import CounterSet, PerfCounters
from .events import (STALL_CAUSES, InstructionIssue, MemAccess, Span, Stall,
                     WavefrontStep)
from .observer import Observer, ObserverHub
from .serialize import (SerializableMixin, dump_json, flatten, json_ready,
                        nest)

# The profiler pulls in the runtime/core layers, which themselves
# import repro.obs for the event types -- load it lazily so importing
# any instrumented layer never recurses back through this package.
_LAZY = {"ProfileResult", "profile_kernel", "resolve_arch"}


def __getattr__(name):
    if name in _LAZY:
        from . import profiler

        return getattr(profiler, name)
    raise AttributeError("module {!r} has no attribute {!r}".format(
        __name__, name))

__all__ = [
    "Observer", "ObserverHub",
    "CounterSet", "PerfCounters",
    "ChromeTrace", "validate_chrome_trace",
    "InstructionIssue", "Stall", "MemAccess", "Span", "WavefrontStep",
    "STALL_CAUSES",
    "ProfileResult", "profile_kernel", "resolve_arch",
    "SerializableMixin", "dump_json", "json_ready", "nest", "flatten",
]
