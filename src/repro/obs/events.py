"""Typed observation events emitted by the simulated board.

Every instrumented layer (CU pipeline, memory system, SoC, runtime,
service) reports what it does through a small, closed set of event
types -- the software analogue of the paper's Section 2.2.1 debugging
setup, where the FPGA exposes its internal cycle counter and per-stage
activity over JTAG/memory-mapped reads.

Events are plain frozen dataclasses so observers can be written
against stable, documented fields, and so a recorded stream can be
serialised (every field is a JSON-ready scalar).  They are only ever
constructed while at least one observer is attached; the disabled
path allocates nothing.

Timestamps are **CU-domain cycles** on the board timeline (the same
clock every timing quantity in the simulator uses); exporters convert
to wall-clock units when a clock frequency is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Stall causes attributed by the CU pipeline's issue stage.
STALL_CAUSES = ("operand-dep", "fu-busy", "memory", "barrier", "drain")

#: Span kinds emitted by the SoC / runtime / service layers.
SPAN_KINDS = ("kernel", "workgroup", "host_phase", "preload", "job")


@dataclass(frozen=True)
class InstructionIssue:
    """One instruction entered the CU front end."""

    cycle: float          # issue cycle (board timeline, CU domain)
    cu_index: int
    wf_id: int
    address: int          # byte address of the instruction
    name: str             # mnemonic, e.g. "v_add_i32"
    unit: str             # functional unit, e.g. "simd"
    frontend_cycles: float = 1.0  # front-end occupancy (1 or 2 fetches)


@dataclass(frozen=True)
class Stall:
    """The CU front end idled before an issue (or drained at the end).

    ``cause`` is one of :data:`STALL_CAUSES`:

    * ``operand-dep`` -- the wavefront serialised on its own previous
      result (in-order issue),
    * ``fu-busy``     -- every instance of the needed functional unit
      was occupied by other wavefronts,
    * ``memory``      -- an ``s_waitcnt`` waited on outstanding
      vector/scalar memory completions,
    * ``barrier``     -- the wavefront waited at an ``s_barrier``
      rendezvous,
    * ``drain``       -- end-of-workgroup pipeline drain (outstanding
      memory + endpgm epilogue after the last issue).
    """

    cycle: float          # when the idle gap started
    cu_index: int
    wf_id: int            # the wavefront whose wait caused the gap
    cause: str
    cycles: float         # length of the idle gap


@dataclass(frozen=True)
class MemAccess:
    """One memory-system transaction.

    ``space`` is ``"global"`` or ``"lds"``; ``kind`` is ``"vector"``,
    ``"scalar"`` or ``"lds"``.  ``hit`` is True for a prefetch-buffer
    hit, False for a relay (miss) access, and None for LDS (always
    in-CU BRAM -- the hit/miss distinction does not apply).
    """

    cycle: float          # requested start time
    cu_index: int
    space: str
    kind: str
    hit: Optional[bool]
    completed: float      # completion time returned to the pipeline


@dataclass(frozen=True)
class WavefrontStep:
    """One instruction's architectural effects just completed.

    Emitted by the CU pipeline *after* the instruction's functional
    semantics executed, carrying live references to the wavefront and
    decoded instruction.  Unlike the other event types this one is
    **not serialisable** -- it exists for verification observers (the
    :mod:`repro.verify` invariant checker, final-state recorders) that
    need to inspect architectural state in flight.  Recording
    observers that persist streams should ignore it.
    """

    cycle: float          # front-end completion cycle of the step
    cu_index: int
    wf: object            # the live Wavefront (post-execution state)
    inst: object          # the decoded instruction that just executed

    @property
    def name(self):
        return self.inst.spec.name


@dataclass(frozen=True)
class Span:
    """A named interval on the board timeline.

    Emitted for kernel launches (``kind="kernel"``), per-workgroup
    executions (``"workgroup"``, with ``cu_index`` set), MicroBlaze
    host phases (``"host_phase"``), prefetch preloads (``"preload"``)
    and service-job lifecycles (``"job"``).  ``meta`` carries
    kind-specific detail as a flat tuple of ``(key, value)`` pairs so
    the event stays hashable and cheap.
    """

    kind: str
    name: str
    start: float
    end: float
    cu_index: Optional[int] = None
    meta: Tuple = ()

    @property
    def cycles(self):
        return self.end - self.start

    def meta_dict(self):
        return dict(self.meta)
