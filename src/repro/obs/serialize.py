"""The one serialization convention shared across the repo.

Every result object the toolchain can emit as JSON -- `RunMetrics`,
`TrimResult`, `SynthesisReport`, `ServiceStats` snapshots, `JobResult`,
`CounterSet`, profile results -- follows the same contract:

* ``to_dict()`` returns a plain mapping of **stable snake_case keys**
  to JSON-ready values (scalars, lists, nested dicts); derived
  quantities are included so consumers never recompute them,
* ``to_json(indent=2)`` is ``json.dumps`` of that mapping and is
  provided for free by :class:`SerializableMixin`,
* nothing NumPy-, enum- or dataclass-shaped leaks through --
  :func:`json_ready` normalises those.

The CLI's ``--json`` modes (``run``, ``serve``, ``profile``, ``trim``)
all print ``dump_json(...)`` of such mappings, so their output shape
is uniform and machine-diffable across subcommands.
"""

from __future__ import annotations

import dataclasses
import enum
import json


def json_ready(value):
    """Recursively normalise ``value`` into JSON-serialisable types.

    Handles objects exposing ``to_dict()``, dataclasses, enums, sets
    and NumPy scalars/arrays (via their ``item``/``tolist`` methods,
    without importing numpy here).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return json_ready(value.value)
    if isinstance(value, dict):
        return {str(json_ready(k)): json_ready(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_ready(v) for v in value)
    if hasattr(value, "to_dict"):
        return json_ready(value.to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_ready(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if hasattr(value, "tolist"):       # numpy array
        return json_ready(value.tolist())
    if hasattr(value, "item"):         # numpy scalar
        return json_ready(value.item())
    return str(value)


def dump_json(value, indent=2):
    """Serialise any supported object to a JSON string."""
    return json.dumps(json_ready(value), indent=indent)


class SerializableMixin:
    """Adds ``to_json()`` to any class that implements ``to_dict()``."""

    def to_dict(self):
        raise NotImplementedError

    def to_json(self, indent=2):
        return dump_json(self.to_dict(), indent=indent)


def nest(flat):
    """Fold a flat ``{"a.b.c": v}`` mapping into nested dicts.

    Counter paths are hierarchical by convention; the nested form is
    what ``to_dict()`` emits because it groups related counters for
    human readers and JSON consumers alike.  Raises ``ValueError``
    when a path is both a leaf and a prefix (e.g. ``"a"`` and
    ``"a.b"``) -- that mapping could not round-trip.
    """
    tree = {}
    for path in sorted(flat):
        parts = path.split(".")
        node = tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise ValueError(
                    "counter path {!r} collides with leaf {!r}".format(
                        path, part))
        if isinstance(node.get(parts[-1]), dict):
            raise ValueError(
                "counter path {!r} collides with group of the same name"
                .format(path))
        node[parts[-1]] = flat[path]
    return tree


def flatten(tree, prefix=""):
    """Inverse of :func:`nest`: nested dicts back to dotted paths."""
    flat = {}
    for key, value in tree.items():
        path = "{}.{}".format(prefix, key) if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, path))
        else:
            flat[path] = value
    return flat
