"""The ``repro profile`` engine: one observed run, fully accounted.

Runs a benchmark from the suite on one architecture configuration
with the standard observers attached -- :class:`PerfCounters` always,
:class:`ChromeTrace` when a trace is requested -- and packages the
result behind the repo-wide serialization convention, so
``repro profile <kernel> --json`` emits the same shape of payload as
``run --json`` and ``serve --json``.
"""

from __future__ import annotations

from ..core.config import ArchConfig
from ..core.flow import ScratchFlow
from ..errors import LaunchError
from .events import STALL_CAUSES
from .serialize import SerializableMixin

_FIXED_CONFIGS = {
    "original": ArchConfig.original,
    "dcd": ArchConfig.dcd,
    "baseline": ArchConfig.baseline,
}


def resolve_arch(benchmark, config, flow=None):
    """Resolve a config label the way the CLI and service do.

    Fixed generations come straight from :class:`ArchConfig`; the
    application-aware labels (``trimmed``, ``multicore``,
    ``multithread``) run the static flow for ``benchmark``.  Returns
    ``(arch, synthesizer)`` so callers price power consistently.
    """
    flow = flow or ScratchFlow(benchmark)
    if config in _FIXED_CONFIGS:
        return _FIXED_CONFIGS[config](), flow.synthesizer
    if config == "trimmed":
        return flow.trim().config, flow.synthesizer
    return flow.plan(config), flow.synthesizer


class ProfileResult(SerializableMixin):
    """Everything one profiled run produced.

    A thin view over the :class:`~repro.exec.ExecutionResult` envelope
    that keeps the ``repro profile`` payload shape stable.
    """

    def __init__(self, benchmark, config, result):
        self.benchmark = benchmark
        self.config = config
        self.result = result

    @property
    def metrics(self):
        return self.result.metrics

    @property
    def perf(self):
        return self.result.counters

    @property
    def trace(self):
        return self.result.trace

    @property
    def counters(self):
        return self.perf.counters

    def to_dict(self):
        return {
            "benchmark": self.benchmark,
            "config": self.config,
            "metrics": self.metrics.to_dict(),
            "counters": self.perf.to_dict(),
            "memory_stats": dict(self.result.memory_stats),
        }

    def render(self):
        """The human-readable profile table."""
        c = self.counters
        derived = self.perf.derived()
        total = c.get("cycles.total")
        lines = [
            "profile: {} on {}".format(self.benchmark,
                                       self.result.arch.describe()),
            "",
            "  {:<26} {:>14.6f}".format("simulated seconds",
                                        self.metrics.seconds),
            "  {:<26} {:>14}".format("instructions",
                                     self.metrics.instructions),
            "  {:<26} {:>14.1f}".format("board cycles (timeline)",
                                        self.result.cu_cycles),
            "",
            "cycle attribution ({:.1f} workgroup-execution cycles)"
            .format(total),
        ]

        def frac(v):
            return v / total if total else 0.0

        lines.append("  {:<26} {:>14.1f}  {:>6.1%}".format(
            "issue-active", c.get("cycles.active"),
            frac(c.get("cycles.active"))))
        for cause in STALL_CAUSES:
            cycles = c.get("stall." + cause)
            lines.append("  {:<26} {:>14.1f}  {:>6.1%}".format(
                "stall: " + cause, cycles, frac(cycles)))
        lines.append("")
        lines.append("issue mix ({} instructions issued)".format(
            c.get("issue.total")))
        for unit, count in sorted(c.group("issue.unit").items(),
                                  key=lambda kv: -kv[1]):
            lines.append("  {:<26} {:>14}  {:>6.1%}".format(
                unit, count,
                count / c.get("issue.total") if c.get("issue.total") else 0))
        lines.append("")
        lines.append("memory")
        lines.append("  {:<26} {:>14}".format("prefetch hits",
                                              c.get("mem.global.hits")))
        lines.append("  {:<26} {:>14}".format("prefetch misses",
                                              c.get("mem.global.misses")))
        lines.append("  {:<26} {:>13.1%}".format(
            "prefetch hit rate", derived["prefetch_hit_rate"]))
        lines.append("  {:<26} {:>14}".format("lds accesses",
                                              c.get("mem.lds.accesses")))
        lines.append("")
        lines.append("occupancy")
        lines.append("  {:<26} {:>14}".format(
            "workgroups", c.get("occupancy.workgroups")))
        lines.append("  {:<26} {:>14}".format(
            "wavefronts", c.get("occupancy.wavefronts")))
        lines.append("  {:<26} {:>14.2f}".format(
            "avg wavefronts/group",
            derived["avg_wavefronts_per_workgroup"]))
        if self.trace is not None:
            lines.append("")
            lines.append("trace: {} events recorded".format(len(self.trace)))
        return "\n".join(lines)


def profile_kernel(benchmark_name, params=None, config="baseline",
                   max_groups=None, verify=True, trace=False,
                   trace_instructions=True):
    """Run one benchmark under full observation; returns ProfileResult.

    ``trace=True`` additionally records a Chrome trace (see
    :meth:`ProfileResult.trace` / :meth:`ChromeTrace.write`).
    """
    from ..exec import BenchmarkWorkload, ExecutionRequest, execute
    from ..kernels import KERNELS

    if benchmark_name not in KERNELS:
        raise LaunchError(
            "unknown benchmark {!r}; available: {}".format(
                benchmark_name, ", ".join(sorted(KERNELS))))
    bench = KERNELS[benchmark_name](**(params or {}))
    arch, synthesizer = resolve_arch(bench, config)
    result = execute(ExecutionRequest(
        workload=BenchmarkWorkload(instance=bench),
        arch=arch,
        max_groups=max_groups,
        verify=verify,
        profile=True,
        trace=trace,
        trace_instructions=trace_instructions,
        report=synthesizer.synthesize(arch),
        label="{}@{}".format(bench.name, arch.describe()),
    ))
    return ProfileResult(benchmark=benchmark_name, config=config,
                         result=result)
