"""The observer API: how instrumentation attaches to a device.

Design goals, in priority order:

1. **Zero cost when disabled.**  Instrumented layers hold an ``obs``
   slot that is ``None`` whenever no observer is attached; every hook
   point is a single ``if obs is not None`` guard, so an unobserved
   simulation does no event construction, no dispatch, no dictionary
   work.
2. **Any number of observers.**  A :class:`ObserverHub` fans each
   event out to every attached observer, so a tracer, a counter set
   and a Chrome-trace recorder can watch one run simultaneously.
3. **Typed events.**  Observers implement ``on_*`` methods for the
   event classes in :mod:`repro.obs.events`; unimplemented hooks
   default to no-ops, so an observer only declares what it consumes.

Usage (through the execution layer, which attaches for the run and
detaches before the board returns to the pool)::

    from repro.exec import ExecutionRequest, execute
    from repro.obs import PerfCounters

    counters = PerfCounters()
    execute(ExecutionRequest(benchmark="matrix_add_i32",
                             observers=(counters,)))
    print(counters.render())

``SoftGpu.attach``/``detach`` is the only attachment surface; the
pre-obs ``attach_tracer`` entry point has been removed.
"""

from __future__ import annotations


class Observer:
    """Base class: a sink for board events.  All hooks default to no-ops.

    Subclasses override any of:

    * :meth:`on_issue` -- :class:`~repro.obs.events.InstructionIssue`
    * :meth:`on_stall` -- :class:`~repro.obs.events.Stall`
    * :meth:`on_mem_access` -- :class:`~repro.obs.events.MemAccess`
    * :meth:`on_span` -- :class:`~repro.obs.events.Span`
    * :meth:`on_step` -- :class:`~repro.obs.events.WavefrontStep`
      (post-execution architectural state; verification observers)
    """

    def on_issue(self, event):
        pass

    def on_stall(self, event):
        pass

    def on_mem_access(self, event):
        pass

    def on_span(self, event):
        pass

    def on_step(self, event):
        pass


class ObserverHub:
    """Fan-out dispatcher owned by one simulated board.

    The hub itself is what instrumented layers hold in their ``obs``
    slot -- but only while at least one observer is attached.  The
    owner (:class:`~repro.soc.gpu.Gpu`) re-syncs those slots to
    ``None`` when the hub empties, restoring the zero-cost path.
    """

    __slots__ = ("observers", "dispatched")

    def __init__(self):
        self.observers = []
        #: Total events dispatched (all types); used by the overhead
        #: benchmark to prove the disabled path never dispatches.
        self.dispatched = 0

    def __len__(self):
        return len(self.observers)

    def attach(self, observer):
        if observer in self.observers:
            return observer
        self.observers.append(observer)
        return observer

    def detach(self, observer):
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    # -- dispatch ----------------------------------------------------------
    # One method per event type: call sites are hot paths and a typed
    # call avoids a per-event isinstance dance in every observer.

    def emit_issue(self, event):
        self.dispatched += 1
        for obs in self.observers:
            obs.on_issue(event)

    def emit_stall(self, event):
        self.dispatched += 1
        for obs in self.observers:
            obs.on_stall(event)

    def emit_mem_access(self, event):
        self.dispatched += 1
        for obs in self.observers:
            obs.on_mem_access(event)

    def emit_span(self, event):
        self.dispatched += 1
        for obs in self.observers:
            obs.on_span(event)

    def emit_step(self, event):
        self.dispatched += 1
        for obs in self.observers:
            obs.on_step(event)
