"""Chrome trace-event exporter: open any run in chrome://tracing.

:class:`ChromeTrace` is an observer that records spans (kernel
launches, per-workgroup executions, host phases, preloads, service
jobs), instruction issues and stalls as Trace Event Format objects --
the JSON schema consumed by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev).

Layout: one process (pid 0, "repro board"), one thread row per
compute unit plus a "host (MicroBlaze)" row.  Timestamps are
microseconds; when the CU clock frequency is known the timeline is
real simulated time, otherwise one cycle renders as one microsecond.

Usage::

    trace = device.attach(ChromeTrace(clock_hz=device.gpu.clocks.cu_hz))
    bench.run_on(device)
    trace.write("out.json")     # load this file in Perfetto
"""

from __future__ import annotations

import json

from .observer import Observer
from .serialize import SerializableMixin

#: pid used for every event (one simulated board per trace).
BOARD_PID = 0
#: tid of the host (MicroBlaze) row; CU ``i`` renders on tid ``i + 1``.
HOST_TID = 0

#: Keys the Trace Event Format requires on every event.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid")


class ChromeTrace(Observer, SerializableMixin):
    """Records board events in Chrome trace-event form.

    ``instructions`` controls whether per-instruction issue slices are
    emitted (they dominate file size on long runs); ``max_slices``
    bounds the instruction/stall slice count -- past it the trace
    keeps only spans, and ``dropped_slices`` says how many were shed.
    """

    def __init__(self, clock_hz=None, instructions=True, max_slices=200_000):
        self.clock_hz = clock_hz
        self.instructions = instructions
        self.max_slices = max_slices
        self.dropped_slices = 0
        self._events = []
        self._slices = 0
        self._named_threads = set()
        self._add_metadata("process_name", HOST_TID,
                           {"name": "repro board"})
        self._name_thread(HOST_TID, "host (MicroBlaze)")

    # -- time base ---------------------------------------------------------

    def _us(self, cycles):
        """Board cycles -> trace microseconds."""
        if self.clock_hz:
            return cycles * 1e6 / self.clock_hz
        return float(cycles)

    # -- metadata ----------------------------------------------------------

    def _add_metadata(self, name, tid, args):
        self._events.append({
            "name": name, "ph": "M", "ts": 0.0,
            "pid": BOARD_PID, "tid": tid, "args": args,
        })

    def _name_thread(self, tid, label):
        if tid in self._named_threads:
            return
        self._named_threads.add(tid)
        self._add_metadata("thread_name", tid, {"name": label})
        # sort_index keeps the host row on top, CUs in order below.
        self._add_metadata("thread_sort_index", tid, {"sort_index": tid})

    def _cu_tid(self, cu_index):
        tid = cu_index + 1
        self._name_thread(tid, "cu{}".format(cu_index))
        return tid

    def _complete(self, name, tid, start, end, cat, args=None):
        event = {
            "name": name, "ph": "X", "cat": cat,
            "ts": self._us(start), "dur": self._us(end - start),
            "pid": BOARD_PID, "tid": tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def _take_slice(self):
        if self._slices >= self.max_slices:
            self.dropped_slices += 1
            return False
        self._slices += 1
        return True

    # -- event hooks -------------------------------------------------------

    def on_span(self, event):
        if event.kind == "workgroup":
            tid = self._cu_tid(event.cu_index or 0)
        else:
            tid = HOST_TID
        self._complete(
            "{}:{}".format(event.kind, event.name), tid,
            event.start, event.end, cat=event.kind,
            args=event.meta_dict() or None)

    def on_issue(self, event):
        if not self.instructions or not self._take_slice():
            return
        self._complete(
            event.name, self._cu_tid(event.cu_index),
            event.cycle, event.cycle + event.frontend_cycles,
            cat="instruction",
            args={"wf": event.wf_id, "unit": event.unit,
                  "address": event.address})

    def on_stall(self, event):
        if not self.instructions or not self._take_slice():
            return
        self._complete(
            "stall:{}".format(event.cause), self._cu_tid(event.cu_index),
            event.cycle, event.cycle + event.cycles,
            cat="stall", args={"wf": event.wf_id})

    def on_mem_access(self, event):
        if not self.instructions or not self._take_slice():
            return
        name = ("{}:{}".format(event.space,
                               "hit" if event.hit else "miss")
                if event.space == "global" else "lds")
        self._events.append({
            "name": name, "ph": "i", "s": "t",
            "ts": self._us(event.cycle),
            "pid": BOARD_PID, "tid": self._cu_tid(event.cu_index),
            "cat": "memory",
        })

    # -- output ------------------------------------------------------------

    def __len__(self):
        return len(self._events)

    def to_dict(self):
        """The Trace Event Format payload (JSON object form)."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro.obs",
                "clock_hz": self.clock_hz,
                "dropped_slices": self.dropped_slices,
            },
        }

    def write(self, path):
        """Write the trace to ``path``; load it in chrome://tracing."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
        return path


def validate_chrome_trace(payload):
    """Check a payload against the Trace Event Format essentials.

    Raises ``ValueError`` on the first violation; returns the event
    count when the payload is well-formed.  Used by the tier-1 tests
    and the CI trace-schema gate.
    """
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace must be an object with a traceEvents list")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, event in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(
                    "event {} is missing required key {!r}: {!r}".format(
                        i, key, event))
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(
                "complete event {} is missing dur: {!r}".format(i, event))
        if not isinstance(event["ts"], (int, float)):
            raise ValueError("event {} has non-numeric ts".format(i))
    return len(events)
