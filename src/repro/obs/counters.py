"""Hierarchical performance counters with stall attribution.

:class:`CounterSet` is a cheap bag of dotted-path counters
(``"issue.unit.simd"``, ``"stall.memory"``); :class:`PerfCounters` is
the observer that fills one from the board's event stream.  Together
they are the software version of the per-unit activity counters the
paper reads off the FPGA (Section 2.2.1) and the per-stage
occupancy/throughput counters the scalable soft-GPGPU literature uses
to justify scaling decisions.

The taxonomy (all cycle figures in CU-domain cycles):

==============================  =========================================
``issue.total``                 instructions issued
``issue.unit.<unit>``           issues per functional unit (salu, simd,
                                simf, lsu, branch)
``cycles.total``                summed workgroup-execution cycles
``cycles.active``               front-end busy cycles (fetch/decode/issue)
``stall.<cause>``               front-end idle cycles by cause
                                (operand-dep, fu-busy, memory, barrier,
                                drain)
``mem.global.hits``             global accesses served by the prefetch
                                buffer
``mem.global.misses``           global accesses that fell back to the
                                MicroBlaze relay
``mem.lds.accesses``            LDS (in-CU BRAM) accesses
``occupancy.wavefronts``        wavefronts executed
``occupancy.workgroups``        workgroups executed
``occupancy.peak_wavefronts``   largest single-workgroup wavefront count
``span.<kind>.count/cycles``    kernel / host_phase / preload spans
==============================  =========================================

**Accounting invariant** (pinned by the tier-1 micro-kernel test): for
every workgroup, ``cycles.active`` plus the sum of every
``stall.<cause>`` equals ``cycles.total`` -- each front-end cycle of
each workgroup execution is attributed exactly once.  Likewise
``mem.global.hits + mem.global.misses`` equals the total number of
global-memory transactions issued to the memory system.
"""

from __future__ import annotations

from .events import STALL_CAUSES
from .observer import Observer
from .serialize import SerializableMixin, flatten, nest


class CounterSet(SerializableMixin):
    """A mapping of dotted counter paths to numeric values.

    Hierarchy is by naming convention: ``add("stall.memory", 3)`` and
    the ``to_dict()`` rendering groups everything under ``stall``.
    """

    def __init__(self, values=None):
        self._values = dict(values or {})

    # -- recording ---------------------------------------------------------

    def add(self, path, amount=1):
        """Increment one counter (creating it at zero)."""
        self._values[path] = self._values.get(path, 0) + amount

    def merge(self, other):
        """Accumulate another counter set into this one."""
        for path, value in other.items():
            self.add(path, value)
        return self

    # -- access ------------------------------------------------------------

    def get(self, path, default=0):
        return self._values.get(path, default)

    def __getitem__(self, path):
        return self._values[path]

    def __contains__(self, path):
        return path in self._values

    def __len__(self):
        return len(self._values)

    def __eq__(self, other):
        if not isinstance(other, CounterSet):
            return NotImplemented
        return self._values == other._values

    def items(self):
        return self._values.items()

    def group(self, prefix):
        """All counters under ``prefix.``, keyed by their remainder."""
        start = prefix + "."
        return {path[len(start):]: value
                for path, value in self._values.items()
                if path.startswith(start)}

    def total(self, prefix):
        """Sum of every counter under ``prefix.``."""
        return sum(self.group(prefix).values())

    def clear(self):
        self._values.clear()

    # -- serialization (repo-wide convention) ------------------------------

    def to_dict(self):
        return nest(self._values)

    @classmethod
    def from_dict(cls, tree):
        """Rebuild from a ``to_dict()`` payload (round-trip safe)."""
        return cls(flatten(tree))

    def render(self, indent=""):
        lines = []
        for path in sorted(self._values):
            value = self._values[path]
            text = ("{:.1f}".format(value) if isinstance(value, float)
                    else str(value))
            lines.append("{}{:<28} {:>14}".format(indent, path, text))
        return "\n".join(lines)

    def __repr__(self):
        return "CounterSet({} counters)".format(len(self._values))


class PerfCounters(Observer):
    """The standard counter-collecting observer.

    Attach to a device, run, detach; ``counters`` then holds the full
    taxonomy and :meth:`derived` the ratios (prefetch hit rate, IPC,
    stall fractions) computed *from* the counters -- never recorded
    separately, so they cannot drift from the raw numbers.
    """

    def __init__(self):
        self.counters = CounterSet()

    # -- event hooks -------------------------------------------------------

    def on_issue(self, event):
        c = self.counters
        c.add("issue.total")
        c.add("issue.unit." + event.unit)
        c.add("cycles.active", event.frontend_cycles)

    def on_stall(self, event):
        self.counters.add("stall." + event.cause, event.cycles)

    def on_mem_access(self, event):
        c = self.counters
        if event.space == "lds":
            c.add("mem.lds.accesses")
        elif event.hit:
            c.add("mem.global.hits")
        else:
            c.add("mem.global.misses")

    def on_span(self, event):
        c = self.counters
        if event.kind == "workgroup":
            c.add("cycles.total", event.cycles)
            meta = event.meta_dict()
            wavefronts = meta.get("wavefronts", 0)
            c.add("occupancy.wavefronts", wavefronts)
            c.add("occupancy.workgroups")
            peak = c.get("occupancy.peak_wavefronts")
            if wavefronts > peak:
                c._values["occupancy.peak_wavefronts"] = wavefronts
            if event.cu_index is not None:
                c.add("cu.{}.cycles".format(event.cu_index), event.cycles)
                c.add("cu.{}.workgroups".format(event.cu_index))
        else:
            c.add("span.{}.count".format(event.kind))
            c.add("span.{}.cycles".format(event.kind), event.cycles)

    # -- derived quantities ------------------------------------------------

    def derived(self):
        """Ratio metrics computed from the raw counters."""
        c = self.counters
        hits = c.get("mem.global.hits")
        misses = c.get("mem.global.misses")
        total_cycles = c.get("cycles.total")
        active = c.get("cycles.active")
        stalls = {cause: c.get("stall." + cause) for cause in STALL_CAUSES}
        stall_total = sum(stalls.values())
        out = {
            "prefetch_hit_rate": (hits / (hits + misses)
                                  if hits + misses else 0.0),
            "issue_ipc": (c.get("issue.total") / total_cycles
                          if total_cycles else 0.0),
            "active_fraction": active / total_cycles if total_cycles else 0.0,
            "stall_fraction": (stall_total / total_cycles
                               if total_cycles else 0.0),
            "avg_wavefronts_per_workgroup": (
                c.get("occupancy.wavefronts")
                / c.get("occupancy.workgroups")
                if c.get("occupancy.workgroups") else 0.0),
        }
        for cause, cycles in stalls.items():
            out["stall_fraction_" + cause.replace("-", "_")] = (
                cycles / total_cycles if total_cycles else 0.0)
        return out

    def to_dict(self):
        payload = self.counters.to_dict()
        payload["derived"] = self.derived()
        return payload

    def render(self):
        lines = ["performance counters", self.counters.render(indent="  ")]
        lines.append("derived")
        for key, value in sorted(self.derived().items()):
            lines.append("  {:<28} {:>13.1%}".format(key, value)
                         if "fraction" in key or "rate" in key
                         else "  {:<28} {:>14.2f}".format(key, value))
        return "\n".join(lines)
