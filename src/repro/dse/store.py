"""Content-addressed, on-disk result store: sweep resumability.

A sweep over hundreds of design points is exactly the workload the
paper's reuse argument (Section 4.3) applies to twice over: the static
flow memoizes within one process, and this store memoizes *across*
processes.  Every evaluated point is written as one JSON file named by
its evaluation key -- the content hash of the design point *and* the
evaluation policy (verification, sampling caps, budget margin, payload
schema).  Re-running an interrupted sweep therefore re-loads finished
points from disk and only executes the remainder; changing any knob
that could change the numbers changes the key, so stale results are
never resurrected.

Writes are atomic (temp file + ``os.replace``) so a sweep killed
mid-write leaves no truncated entries behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from ..errors import DseError

#: Bump when the stored payload layout changes incompatibly; old
#: entries then simply miss and are re-evaluated.
STORE_SCHEMA = 1


def evaluation_key(point, verify, max_groups, budget_margin):
    """Content hash naming one (point, evaluation policy) pairing."""
    payload = {
        "schema": STORE_SCHEMA,
        "point": point.content_key(),
        "verify": bool(verify),
        "max_groups": max_groups,
        "budget_margin": budget_margin,
    }
    return hashlib.sha256(
        ("dse-eval\x00" + json.dumps(payload, sort_keys=True))
        .encode("utf-8")).hexdigest()


class ResultStore:
    """One directory of ``<evaluation key>.json`` point results."""

    def __init__(self, root):
        self.root = root
        os.makedirs(root, exist_ok=True)
        if not os.path.isdir(root):
            raise DseError("result store root {!r} is not a directory"
                           .format(root))

    def _path(self, key):
        if not isinstance(key, str) or len(key) != 64 \
                or not all(c in "0123456789abcdef" for c in key):
            raise DseError("malformed result-store key {!r}".format(key))
        return os.path.join(self.root, key + ".json")

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def __len__(self):
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))

    def keys(self):
        return sorted(name[:-5] for name in os.listdir(self.root)
                      if name.endswith(".json"))

    def get(self, key):
        """The stored payload for ``key``, or None.

        A corrupt entry (interrupted filesystem, manual edit) is
        treated as a miss and deleted so the sweep re-evaluates it.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if payload.get("schema") != STORE_SCHEMA:
            return None
        return payload

    def put(self, key, payload):
        """Atomically persist ``payload`` under ``key``."""
        payload = dict(payload)
        payload["schema"] = STORE_SCHEMA
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def clear(self):
        for key in self.keys():
            os.unlink(self._path(key))
