"""CLI glue: ``python -m repro dse sweep|report|compare``.

Kept beside the engine so the top-level :mod:`repro.cli` only wires a
parser; everything DSE-specific (argument shapes, rendering choices)
lives in this package.
"""

from __future__ import annotations

import sys

from ..obs.serialize import dump_json
from .report import (
    build_report,
    compare_sweeps,
    load_report,
    render_csv,
    render_markdown,
    write_report,
)
from .runner import SWEEP_MODES, SweepRunner, SweepSpec
from .space import PRESETS, preset


def _log(message):
    print(message, file=sys.stderr)


def cmd_dse_sweep(args):
    space = preset(args.preset, kernels=args.kernels or None,
                   smoke=args.smoke)
    spec = SweepSpec(
        space=space,
        verify=args.verify,
        workers=args.workers,
        budget_margin=args.budget_margin,
        mode=args.mode,
        store_dir=args.store,
    )
    runner = SweepRunner(spec, log=_log)
    _log("sweeping {}: {} design point(s)".format(space.name, len(space)))
    sweep = runner.sweep()
    report = build_report(sweep.to_dict())
    if args.out:
        paths = write_report(report, args.out,
                             basename="dse-{}".format(space.name))
        for path in sorted(paths.values()):
            _log("wrote {}".format(path))
    if args.json:
        print(dump_json(report))
    else:
        print(render_markdown(report), end="")
    if report["totals"]["failed"]:
        return 1
    return 0


def cmd_dse_report(args):
    payload = load_report(args.report)
    # Accept either a raw sweep payload or a built report.
    report = payload if "pareto" in payload else build_report(payload)
    if args.csv:
        print(render_csv(report), end="")
    elif args.json:
        print(dump_json(report))
    else:
        print(render_markdown(report), end="")
    return 0


def cmd_dse_compare(args):
    old = load_report(args.old)
    new = load_report(args.new)
    changes = compare_sweeps(old, new, threshold=args.threshold)
    if not changes:
        print("no movement beyond {:.0%}".format(args.threshold))
        return 0
    for change in changes:
        print(change)
    return 1 if args.strict else 0


def add_dse_parser(sub):
    """Register the ``dse`` subcommand tree on a subparsers object."""
    p = sub.add_parser(
        "dse",
        help="design-space exploration: trim x re-investment sweeps, "
             "Pareto frontiers, figure reproduction (docs/dse.md)")
    dse_sub = p.add_subparsers(dest="dse_command", required=True)

    s = dse_sub.add_parser("sweep", help="evaluate a design space")
    s.add_argument("--preset", default="paper", choices=sorted(PRESETS),
                   help="design-space preset (default: paper, the "
                        "Figures 6-8 grid)")
    s.add_argument("--kernels", nargs="*", default=None,
                   help="restrict to these benchmarks")
    s.add_argument("--smoke", action="store_true",
                   help="the CI-sized sub-grid (2 kernels x 4 points "
                        "for the paper preset)")
    s.add_argument("--verify", action="store_true",
                   help="run every workgroup and check outputs "
                        "(default: timing mode with the suite's "
                        "sampling caps)")
    s.add_argument("--workers", type=int, default=4,
                   help="execution fan-out width (default 4)")
    s.add_argument("--mode", choices=SWEEP_MODES, default="exec",
                   help="execution backend: the unified exec layer or "
                        "the kernel service (default exec)")
    s.add_argument("--budget-margin", type=float, default=1.0,
                   help="scale the device's usable capacity used as "
                        "the per-point area budget (default 1.0)")
    s.add_argument("--store", metavar="DIR", default=None,
                   help="content-addressed result store: finished "
                        "points are reused on re-runs (resumability)")
    s.add_argument("--out", metavar="DIR", default=None,
                   help="also write dse-<space>.{json,csv,md} here")
    s.add_argument("--json", action="store_true",
                   help="print the report payload as JSON")
    s.set_defaults(func=cmd_dse_sweep)

    s = dse_sub.add_parser("report",
                           help="re-render a sweep report file")
    s.add_argument("report", help="dse-*.json path")
    s.add_argument("--csv", action="store_true")
    s.add_argument("--json", action="store_true")
    s.set_defaults(func=cmd_dse_report)

    s = dse_sub.add_parser("compare",
                           help="diff two sweep reports point by point")
    s.add_argument("old")
    s.add_argument("new")
    s.add_argument("--threshold", type=float, default=0.05,
                   help="fractional objective movement worth reporting "
                        "(default 0.05)")
    s.add_argument("--strict", action="store_true",
                   help="exit 1 when anything moved")
    s.set_defaults(func=cmd_dse_compare)
    return p
