"""Reduction: sweep results -> Pareto frontier + figure-reproduction
tables, rendered as JSON, CSV and markdown.

The report is the artefact the sweep exists to produce:

* the **Pareto frontier** over (area, cycles, energy) -- which of the
  explored configurations are actually worth building;
* the **per-kernel best-config table** -- for each benchmark, the
  fastest and the most energy-frugal feasible point (Figure 7/8's
  headline comparisons);
* the **figure reproduction** -- points tagged by the ``paper`` preset
  grouped back into Figure 6 (area/power per configuration), Figure 7
  (speedup over the untrimmed baseline) and Figure 8 (energy ratio).

Every rendering is deterministic: stable orderings, fixed float
formats, no timestamps -- the same sweep always writes byte-identical
files (pinned by the determinism test).
"""

from __future__ import annotations

import io
import json
import os

from ..errors import DseError

#: Fixed float format used by the CSV/markdown renderings.
_FMT = "{:.6g}"


def _fmt(value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return _FMT.format(value)


def _ok_points(payload):
    return [p for p in payload["points"] if p["status"] == "ok"]


# ---------------------------------------------------------------------------
# Building the report payload.
# ---------------------------------------------------------------------------

def _best_by_kernel(points):
    """For every kernel, the fastest and the most frugal ok point."""
    by_kernel = {}
    for point in points:
        for kernel, stats in point.get("kernels", {}).items():
            by_kernel.setdefault(kernel, []).append((point, stats))
    table = {}
    for kernel in sorted(by_kernel):
        entries = by_kernel[kernel]
        fastest = min(entries, key=lambda e: (e[1]["cu_cycles"],
                                              e[0]["name"]))
        frugal = min(entries, key=lambda e: (e[1]["energy_j"],
                                             e[0]["name"]))
        table[kernel] = {
            "fastest": {"point": fastest[0]["name"],
                        "cu_cycles": fastest[1]["cu_cycles"]},
            "lowest_energy": {"point": frugal[0]["name"],
                              "energy_j": frugal[1]["energy_j"]},
        }
    return table


def _figures(points):
    """Regroup paper-preset tags into per-figure tables.

    Speedups and energy ratios are relative to the kernel's untrimmed
    ``baseline`` point (the paper's reference configuration); kernels
    without one are reported absolute-only.
    """
    by_kernel = {}
    for point in points:
        if not point.get("tag"):
            continue
        for kernel in point["point"]["kernels"]:
            by_kernel.setdefault(kernel, []).append(point)

    figures = {"fig6_area_power": {}, "fig7_speedup": {},
               "fig8_energy": {}}
    for kernel in sorted(by_kernel):
        entries = by_kernel[kernel]
        reference = next(
            (p for p in entries if p["tag"] == "fig6:baseline"), None)
        fig6, fig7, fig8 = {}, {}, {}
        for point in sorted(entries, key=lambda p: p["name"]):
            label = point["tag"].split(":", 1)[1]
            fig6[label] = {
                "lut": point["area"]["lut"],
                "bram": point["area"]["bram"],
                "dsp": point["area"]["dsp"],
                "power_w": point["power_w"],
            }
            stats = point["kernels"].get(kernel)
            if stats is None:
                continue
            entry = {"cu_cycles": stats["cu_cycles"]}
            energy = {"energy_j": stats["energy_j"]}
            if reference is not None and kernel in reference["kernels"]:
                ref = reference["kernels"][kernel]
                if stats["cu_cycles"]:
                    entry["speedup_vs_baseline"] = (
                        ref["cu_cycles"] / stats["cu_cycles"])
                if stats["energy_j"]:
                    energy["energy_gain_vs_baseline"] = (
                        ref["energy_j"] / stats["energy_j"])
            fig7[label] = entry
            fig8[label] = energy
        figures["fig6_area_power"][kernel] = fig6
        figures["fig7_speedup"][kernel] = fig7
        figures["fig8_energy"][kernel] = fig8
    return figures


def build_report(sweep_payload):
    """The full report payload from ``SweepReport.to_dict()``."""
    if not isinstance(sweep_payload, dict) or "points" not in sweep_payload:
        raise DseError("not a sweep payload (missing 'points')")
    ok = _ok_points(sweep_payload)
    pareto = [p for p in ok if p.get("pareto")]
    return {
        "schema": 1,
        "space": sweep_payload["space"],
        "spec": sweep_payload["spec"],
        "totals": sweep_payload["totals"],
        "points": sweep_payload["points"],
        "pareto": [
            {"name": p["name"], "tag": p["tag"],
             "area_luts": p["area"]["lut"],
             "cu_cycles": p["totals"]["cu_cycles"],
             "energy_j": p["totals"]["energy_j"]}
            for p in sorted(pareto, key=lambda p: p["area"]["lut"])
        ],
        "best_by_kernel": _best_by_kernel(ok),
        "figures": _figures(ok),
    }


# ---------------------------------------------------------------------------
# Renderings.
# ---------------------------------------------------------------------------

CSV_COLUMNS = ("name", "tag", "status", "pareto", "num_cus",
               "extra_valus", "lut", "ff", "bram", "dsp",
               "power_w", "cu_cycles", "seconds", "energy_j")


def render_csv(report):
    """One row per design point, flat -- the plotting-friendly form."""
    out = io.StringIO()
    out.write(",".join(CSV_COLUMNS) + "\n")
    for point in report["points"]:
        area = point.get("area", {})
        totals = point.get("totals", {})
        row = {
            "name": point["name"],
            "tag": point.get("tag", ""),
            "status": point["status"],
            "pareto": int(bool(point.get("pareto"))),
            "num_cus": point["point"]["num_cus"],
            "extra_valus": point["point"]["extra_valus"],
            "lut": area.get("lut", ""),
            "ff": area.get("ff", ""),
            "bram": area.get("bram", ""),
            "dsp": area.get("dsp", ""),
            "power_w": point.get("power_w", ""),
            "cu_cycles": totals.get("cu_cycles", ""),
            "seconds": totals.get("seconds", ""),
            "energy_j": totals.get("energy_j", ""),
        }
        out.write(",".join(_fmt(row[c]) if row[c] != "" else ""
                           for c in CSV_COLUMNS) + "\n")
    return out.getvalue()


def render_markdown(report):
    """The human-facing summary."""
    lines = []
    totals = report["totals"]
    lines.append("# DSE report: {}".format(report["space"]))
    lines.append("")
    lines.append("{} point(s): {} ok, {} infeasible (area budget), "
                 "{} failed, {} reused from the store; {} on the "
                 "Pareto frontier.".format(
                     totals["points"], totals["ok"], totals["infeasible"],
                     totals["failed"], totals["reused"], totals["pareto"]))
    lines.append("")
    lines.append("## Pareto frontier (area vs cycles vs energy)")
    lines.append("")
    lines.append("| design point | tag | LUTs | CU cycles | energy (J) |")
    lines.append("|---|---|---:|---:|---:|")
    for entry in report["pareto"]:
        lines.append("| {} | {} | {} | {} | {} |".format(
            entry["name"], entry["tag"] or "-",
            _fmt(entry["area_luts"]), _fmt(entry["cu_cycles"]),
            _fmt(entry["energy_j"])))
    lines.append("")
    lines.append("## Best configuration per kernel")
    lines.append("")
    lines.append("| kernel | fastest | CU cycles | lowest energy "
                 "| energy (J) |")
    lines.append("|---|---|---:|---|---:|")
    for kernel, best in report["best_by_kernel"].items():
        lines.append("| {} | {} | {} | {} | {} |".format(
            kernel,
            best["fastest"]["point"], _fmt(best["fastest"]["cu_cycles"]),
            best["lowest_energy"]["point"],
            _fmt(best["lowest_energy"]["energy_j"])))
    infeasible = [p for p in report["points"]
                  if p["status"] == "infeasible"]
    if infeasible:
        lines.append("")
        lines.append("## Rejected by the area budget")
        lines.append("")
        for point in infeasible:
            lines.append("- `{}`: {}".format(point["name"],
                                             point.get("error", "")))
    fig7 = report["figures"]["fig7_speedup"]
    if any(fig7.values()):
        lines.append("")
        lines.append("## Figure 7: speedup over the untrimmed baseline")
        lines.append("")
        lines.append("| kernel | config | CU cycles | speedup |")
        lines.append("|---|---|---:|---:|")
        for kernel in sorted(fig7):
            for label in sorted(fig7[kernel]):
                entry = fig7[kernel][label]
                lines.append("| {} | {} | {} | {} |".format(
                    kernel, label, _fmt(entry["cu_cycles"]),
                    _fmt(entry["speedup_vs_baseline"])
                    if "speedup_vs_baseline" in entry else "-"))
    lines.append("")
    return "\n".join(lines)


def write_report(report, out_dir, basename="dse"):
    """Write ``<basename>.json/.csv/.md`` under ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    for suffix, text in (("json", payload),
                         ("csv", render_csv(report)),
                         ("md", render_markdown(report))):
        path = os.path.join(out_dir, "{}.{}".format(basename, suffix))
        with open(path, "w") as handle:
            handle.write(text)
        paths[suffix] = path
    return paths


def load_report(path):
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise DseError("cannot read {}: {}".format(path, exc)) from exc
    except ValueError as exc:
        raise DseError("{} is not valid JSON: {}".format(path, exc)) from exc
    if not isinstance(payload, dict) or "points" not in payload:
        raise DseError("{} is not a DSE report".format(path))
    return payload


# ---------------------------------------------------------------------------
# Comparison.
# ---------------------------------------------------------------------------

def compare_sweeps(old, new, threshold=0.05):
    """Point-by-point movement between two report payloads.

    Matches points by name; reports status changes, frontier
    entries/exits, and objective movements beyond ``threshold``.
    """
    old_points = {p["name"]: p for p in old["points"]}
    new_points = {p["name"]: p for p in new["points"]}
    changes = []
    for name in sorted(set(old_points) | set(new_points)):
        a, b = old_points.get(name), new_points.get(name)
        if a is None:
            changes.append("added: {}".format(name))
            continue
        if b is None:
            changes.append("removed: {}".format(name))
            continue
        if a["status"] != b["status"]:
            changes.append("{}: status {} -> {}".format(
                name, a["status"], b["status"]))
            continue
        if a["status"] != "ok":
            continue
        if bool(a.get("pareto")) != bool(b.get("pareto")):
            changes.append("{}: {} the Pareto frontier".format(
                name, "joined" if b.get("pareto") else "left"))
        for metric in ("cu_cycles", "energy_j"):
            base = a["totals"][metric]
            cur = b["totals"][metric]
            if base and abs(cur - base) / base > threshold:
                changes.append("{}: {} {} -> {} ({:+.1%})".format(
                    name, metric, _fmt(base), _fmt(cur),
                    (cur - base) / base))
        if a["area"]["lut"] != b["area"]["lut"]:
            changes.append("{}: luts {} -> {}".format(
                name, a["area"]["lut"], b["area"]["lut"]))
    return changes
