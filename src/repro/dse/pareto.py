"""Pareto-frontier reduction over evaluated design points.

The trim/re-investment trade the paper exposes is genuinely multi-
objective: a trimmed single CU wins on area, a trimmed multi-core
wins on cycles, and energy sits between them (Figures 6-8).  The
frontier is the set of points no other point beats on *every* axis --
everything off it is strictly wasted silicon or strictly wasted time.

All objectives are minimised; callers hand in per-point metric
dictionaries (area LUTs, simulated CU cycles, energy in joules).
The implementation is the plain O(n^2) dominance scan -- sweep sizes
here are hundreds of points, not millions -- with a deterministic
ordering so reports are byte-stable.
"""

from __future__ import annotations

from ..errors import DseError

#: Default objective axes, all minimised.
DEFAULT_OBJECTIVES = ("area_luts", "cu_cycles", "energy_j")


def objective_vector(metrics, objectives=DEFAULT_OBJECTIVES):
    """Extract the objective tuple, validating presence and finiteness."""
    vector = []
    for name in objectives:
        value = metrics.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise DseError(
                "objective {!r} missing or non-numeric in {!r}".format(
                    name, sorted(metrics)))
        vector.append(float(value))
    return tuple(vector)


def dominates(a, b):
    """True iff objective vector ``a`` dominates ``b`` (minimising):
    no worse everywhere, strictly better somewhere."""
    if len(a) != len(b):
        raise DseError("objective vectors differ in length")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def frontier(entries, objectives=DEFAULT_OBJECTIVES, key=None):
    """The non-dominated subset of ``entries``.

    ``entries`` is a sequence of metric dicts (or arbitrary objects if
    ``key`` maps each to its metric dict).  Returns the entries on the
    frontier, in input order.  Duplicate objective vectors all survive
    (neither strictly beats the other).
    """
    key = key or (lambda entry: entry)
    vectors = [objective_vector(key(entry), objectives)
               for entry in entries]
    out = []
    for i, entry in enumerate(entries):
        if not any(dominates(vectors[j], vectors[i])
                   for j in range(len(vectors)) if j != i):
            out.append(entry)
    return out


def frontier_flags(entries, objectives=DEFAULT_OBJECTIVES, key=None):
    """Per-entry booleans: is this entry on the frontier?"""
    on = frontier(entries, objectives=objectives, key=key)
    selected = {id(entry) for entry in on}
    return [id(entry) in selected for entry in entries]
