"""Design-space exploration over the SCRATCH trim/re-investment space.

The paper evaluates six configurations per benchmark by hand
(Figures 6-8); this package turns that into an engine: declarative
:class:`DesignPoint` grids (:mod:`~repro.dse.space`), a resumable
sweep runner that joins simulator cycles with synthesis area and
model power under an area budget (:mod:`~repro.dse.runner` /
:mod:`~repro.dse.store`), and Pareto/figure reductions
(:mod:`~repro.dse.pareto` / :mod:`~repro.dse.report`).

Entry point: ``python -m repro dse sweep --preset paper``.
"""

from .pareto import DEFAULT_OBJECTIVES, dominates, frontier
from .report import build_report, compare_sweeps, render_markdown, write_report
from .runner import PointResult, SweepReport, SweepRunner, SweepSpec, run_sweep
from .space import (
    PAPER_SMOKE_KERNELS,
    PRESETS,
    DesignPoint,
    DesignSpace,
    paper_space,
    preset,
)
from .store import ResultStore, evaluation_key

__all__ = [
    "DEFAULT_OBJECTIVES",
    "DesignPoint",
    "DesignSpace",
    "PAPER_SMOKE_KERNELS",
    "PRESETS",
    "PointResult",
    "ResultStore",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "build_report",
    "compare_sweeps",
    "dominates",
    "evaluation_key",
    "frontier",
    "paper_space",
    "preset",
    "render_markdown",
    "run_sweep",
    "write_report",
]
