"""The sweep engine: evaluate a :class:`DesignSpace` end to end.

For every :class:`~repro.dse.space.DesignPoint` the runner walks the
whole Figure 3 pipeline:

1. **resolve** -- assemble the point's kernels, run (or reuse) the
   Algorithm 1 trim via the content-addressed
   :class:`~repro.service.cache.ArtifactCache`, apply the point's
   re-investment shape, synthesise, and enforce the area budget: a
   re-investment point is only legal if trimming freed enough device
   resources to pay for the extra CUs/VALUs
   (:class:`~repro.errors.AreaBudgetError` names the point otherwise);
2. **execute** -- fan the point's kernels out through the unified
   execution layer (:meth:`Executor.execute_many` on warm boards) or,
   with ``mode="service"``, as explicit-architecture jobs through a
   :class:`~repro.service.scheduler.KernelService`;
3. **join** -- merge simulated CU cycles with the synthesis report's
   area and the power model's energy into one :class:`PointResult`,
   and persist it in the :class:`~repro.dse.store.ResultStore` so an
   interrupted sweep resumes instead of re-simulating.

Everything in a :class:`PointResult` payload is *simulated* state --
no wall clocks, no timestamps -- so the same spec always reduces to
byte-identical reports (the determinism property the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.config import ArchConfig
from ..core.trimmer import TrimmingTool
from ..errors import AreaBudgetError, DseError, ReproError
from ..fpga.synthesis import Synthesizer
from ..service.cache import ArtifactCache
from .pareto import DEFAULT_OBJECTIVES, frontier_flags
from .space import DesignPoint, DesignSpace
from .store import ResultStore, evaluation_key

#: Sweep execution backends.
SWEEP_MODES = ("exec", "service")


@dataclass(frozen=True)
class SweepSpec:
    """Everything one sweep run is parameterised by.

    ``verify=False`` (the default) runs each kernel with its suite
    workgroup-sampling cap -- the timing-study policy; ``verify=True``
    executes every workgroup and checks outputs against the NumPy
    reference.  ``budget_margin`` scales the device's usable capacity
    (1.0 = the routing-ceiling budget of the synthesis model).
    """

    space: DesignSpace
    verify: bool = False
    workers: int = 4
    budget_margin: float = 1.0
    mode: str = "exec"
    store_dir: Optional[str] = None

    def __post_init__(self):
        if self.mode not in SWEEP_MODES:
            raise DseError("unknown sweep mode {!r}; expected one of {}"
                           .format(self.mode, ", ".join(SWEEP_MODES)))
        if not (0.1 <= self.budget_margin <= 2.0):
            raise DseError("budget_margin must be within 0.1..2.0")
        if self.workers < 1:
            raise DseError("workers must be >= 1")


@dataclass
class PointResult:
    """One evaluated (or rejected) design point, fully joined."""

    point: DesignPoint
    status: str                      # ok | infeasible | failed
    arch: Optional[ArchConfig] = None
    reused: bool = False             # loaded from the result store
    error: str = ""
    #: synthesis-side numbers (area in device primitives, power in W)
    area: dict = field(default_factory=dict)
    power_w: float = 0.0
    budget: dict = field(default_factory=dict)
    #: per-kernel simulated numbers
    kernels: dict = field(default_factory=dict)

    @property
    def ok(self):
        return self.status == "ok"

    @property
    def cu_cycles(self):
        return sum(k["cu_cycles"] for k in self.kernels.values())

    @property
    def seconds(self):
        return sum(k["seconds"] for k in self.kernels.values())

    @property
    def energy_j(self):
        return sum(k["energy_j"] for k in self.kernels.values())

    def objectives(self):
        """The Pareto axes (minimised); only valid for ok points."""
        return {
            "area_luts": float(self.area.get("lut", 0)),
            "cu_cycles": float(self.cu_cycles),
            "energy_j": float(self.energy_j),
        }

    def to_dict(self):
        out = {
            "point": self.point.to_dict(),
            "name": self.point.name,
            "tag": self.point.tag,
            "status": self.status,
        }
        if self.arch is not None:
            out["arch"] = self.arch.to_dict()
        if self.error:
            out["error"] = self.error
        if self.ok:
            out.update({
                "area": dict(self.area),
                "power_w": self.power_w,
                "budget": dict(self.budget),
                "kernels": {name: dict(stats)
                            for name, stats in sorted(self.kernels.items())},
                "totals": {
                    "cu_cycles": self.cu_cycles,
                    "seconds": self.seconds,
                    "energy_j": self.energy_j,
                },
            })
        return out

    @classmethod
    def from_dict(cls, payload):
        return cls(
            point=DesignPoint.from_dict(payload["point"]),
            status=payload["status"],
            arch=(ArchConfig.from_dict(payload["arch"])
                  if "arch" in payload else None),
            error=payload.get("error", ""),
            area=dict(payload.get("area", {})),
            power_w=payload.get("power_w", 0.0),
            budget=dict(payload.get("budget", {})),
            kernels={name: dict(stats)
                     for name, stats in payload.get("kernels", {}).items()},
        )


@dataclass
class SweepReport:
    """The joined outcome of one whole sweep."""

    space_name: str
    spec: dict
    results: Tuple[PointResult, ...]
    reused: int = 0

    @property
    def ok_results(self):
        return [r for r in self.results if r.ok]

    @property
    def infeasible(self):
        return [r for r in self.results if r.status == "infeasible"]

    @property
    def failed(self):
        return [r for r in self.results if r.status == "failed"]

    def frontier_results(self, objectives=DEFAULT_OBJECTIVES):
        ok = self.ok_results
        flags = frontier_flags(ok, objectives=objectives,
                               key=lambda r: r.objectives())
        return [r for r, on in zip(ok, flags) if on]

    def to_dict(self):
        ok = self.ok_results
        flags = frontier_flags(ok, objectives=DEFAULT_OBJECTIVES,
                               key=lambda r: r.objectives())
        on_frontier = {id(r) for r, on in zip(ok, flags) if on}
        points = []
        for result in self.results:
            entry = result.to_dict()
            if result.ok:
                entry["pareto"] = id(result) in on_frontier
            points.append(entry)
        return {
            "schema": 1,
            "space": self.space_name,
            "spec": dict(self.spec),
            "points": points,
            "totals": {
                "points": len(self.results),
                "ok": len(ok),
                "infeasible": len(self.infeasible),
                "failed": len(self.failed),
                "reused": self.reused,
                "pareto": len(on_frontier),
            },
        }


class SweepRunner:
    """Evaluates every point of a :class:`SweepSpec`."""

    def __init__(self, spec, executor=None, cache=None, log=None):
        self.spec = spec
        self.cache = cache or ArtifactCache()
        self.synthesizer = Synthesizer()
        self.tool = TrimmingTool(synthesizer=self.synthesizer)
        self._executor = executor
        self.store = (ResultStore(spec.store_dir)
                      if spec.store_dir else None)
        self.log = log or (lambda message: None)

    # -- resolution --------------------------------------------------------

    def _benchmarks(self, point):
        """(name, params, max_groups) per kernel of the point."""
        from ..kernels import KERNELS
        from ..kernels.suite import EVAL_CONFIGS

        out = []
        for name in point.kernels:
            if name not in KERNELS:
                raise DseError("{}: unknown benchmark {!r}".format(
                    point.name, name))
            params, cap = EVAL_CONFIGS.get(name, ({}, None))
            if self.spec.verify:
                cap = None            # sampling would break verification
            elif point.max_groups is not None:
                cap = point.max_groups
            out.append((name, dict(params), cap))
        return out

    def _trim(self, point):
        """Algorithm 1 for the point's kernel set, via the cache."""
        from ..kernels import KERNELS

        programs = []
        datapaths = set()
        for name in point.kernels:
            if name not in KERNELS:
                raise DseError("{}: unknown benchmark {!r}".format(
                    point.name, name))
            bench = KERNELS[name]()
            programs.extend(bench.programs())
            datapaths.add(bench.datapath_bits)
        datapath = point.datapath_bits or max(datapaths)
        return self.cache.trim(programs, self.tool,
                               datapath_bits=datapath)

    def resolve(self, point):
        """(arch, report) for one point, with the area budget enforced.

        Raises :class:`AreaBudgetError` -- naming the design point --
        when the synthesised architecture does not fit the device's
        usable capacity at the spec's margin.  That is the paper's
        re-investment rule made mechanical: growing CUs or VALUs is
        only admissible when trimming freed the area first.
        """
        trimmed = self._trim(point).config if point.trimmed else None
        arch = point.resolve_arch(trimmed)
        report = self.cache.synthesize(arch, self.synthesizer)
        report.check_budget(report.device.usable,
                            what="design point {}".format(point.name),
                            margin=self.spec.budget_margin)
        return arch, report

    # -- execution ---------------------------------------------------------

    @property
    def executor(self):
        if self._executor is None:
            from ..exec.executor import Executor

            self._executor = Executor(synthesizer=self.synthesizer)
        return self._executor

    def _run_exec(self, plan):
        """Execute (point, kernel) pairs through the unified layer."""
        from ..exec.request import ExecutionRequest

        requests, owners = [], []
        for point, arch, report, benchmarks in plan:
            for name, params, cap in benchmarks:
                kwargs = {}
                if point.global_mem_size is not None:
                    kwargs["global_mem_size"] = point.global_mem_size
                requests.append(ExecutionRequest(
                    benchmark=name, params=params, arch=arch,
                    verify=self.spec.verify, max_groups=cap,
                    report=report,
                    label="{}@{}".format(name, point.name), **kwargs))
                owners.append((point, name))
        results = self.executor.execute_many(
            requests, workers=self.spec.workers, return_exceptions=True)
        joined = {}
        for (point, name), result in zip(owners, results):
            joined.setdefault(point.content_key(), {})[name] = result
        return joined

    def _run_service(self, plan):
        """Execute the plan as explicit-architecture service jobs."""
        from ..service.jobs import Job
        from ..service.scheduler import KernelService
        from ..soc.clocks import CU_CLOCK_HZ

        jobs, owners = [], []
        for point, arch, report, benchmarks in plan:
            for name, params, cap in benchmarks:
                jobs.append(Job(
                    benchmark=name, params=params, arch=arch,
                    config=point.config, verify=self.spec.verify,
                    max_groups=cap, tag=point.name,
                    global_mem_size=point.global_mem_size))
                owners.append((point, name))
        joined = {}
        with KernelService(workers=self.spec.workers, mode="thread",
                           cache=self.cache) as service:
            results = service.run(jobs)
        for (point, name), result in zip(owners, results):
            if result.ok:
                entry = result.metrics
                entry = _KernelStats(
                    cu_cycles=entry.seconds * CU_CLOCK_HZ,
                    seconds=entry.seconds,
                    instructions=entry.instructions,
                    energy_j=entry.energy_joules)
            else:
                entry = ReproError(result.error or "job failed")
            joined.setdefault(point.content_key(), {})[name] = entry
        return joined

    # -- the sweep ---------------------------------------------------------

    def evaluate(self, point):
        """Resolve + execute + join one point, bypassing the store.

        Propagates :class:`AreaBudgetError` (and other
        :class:`ReproError`) to the caller -- the strict single-point
        entry the tests and ``dse sweep --point`` use.
        """
        arch, report = self.resolve(point)
        benchmarks = self._benchmarks(point)
        raw = self._run(
            [(point, arch, report, benchmarks)])[point.content_key()]
        return self._join(point, arch, report, raw)

    def _run(self, plan):
        if self.spec.mode == "service":
            return self._run_service(plan)
        return self._run_exec(plan)

    def _join(self, point, arch, report, raw):
        kernels = {}
        for name, result in raw.items():
            if isinstance(result, ReproError):
                raise result
            if isinstance(result, _KernelStats):
                stats = result
            else:
                stats = _KernelStats(
                    cu_cycles=result.cu_cycles,
                    seconds=result.seconds,
                    instructions=result.instructions,
                    energy_j=result.metrics.energy_joules)
            kernels[name] = {
                "cu_cycles": stats.cu_cycles,
                "seconds": stats.seconds,
                "instructions": stats.instructions,
                "energy_j": stats.energy_j,
            }
        total = report.total
        budget = report.device.usable.scale(self.spec.budget_margin)
        return PointResult(
            point=point, status="ok", arch=arch,
            area=total.rounded().as_dict(),
            power_w=report.power.total,
            budget={
                "budget_lut": budget.rounded().lut,
                "headroom_lut": budget.rounded().lut
                - total.rounded().lut,
                "margin": self.spec.budget_margin,
            },
            kernels=kernels)

    def sweep(self):
        """Evaluate the whole space; infeasible points are recorded,
        stored points are reused, and the rest fan out in one batch."""
        spec = self.spec
        results = {}
        reused = 0
        plan = []
        keys = {}
        for point in spec.space:
            key = evaluation_key(point, spec.verify, point.max_groups,
                                 spec.budget_margin)
            keys[point.content_key()] = key
            if self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    result = PointResult.from_dict(stored["result"])
                    result.reused = True
                    results[point.content_key()] = result
                    reused += 1
                    continue
            try:
                arch, report = self.resolve(point)
                plan.append((point, arch, report,
                             self._benchmarks(point)))
            except AreaBudgetError as exc:
                self.log("infeasible: {}".format(exc))
                results[point.content_key()] = PointResult(
                    point=point, status="infeasible", error=str(exc))
            except ReproError as exc:
                self.log("failed to resolve {}: {}".format(point.name, exc))
                results[point.content_key()] = PointResult(
                    point=point, status="failed", error=str(exc))

        if plan:
            self.log("evaluating {} point(s) x kernels on {} worker(s), "
                     "{} reused".format(len(plan), spec.workers, reused))
            raw_by_point = self._run(plan)
            for point, arch, report, _ in plan:
                raw = raw_by_point.get(point.content_key(), {})
                try:
                    result = self._join(point, arch, report, raw)
                except ReproError as exc:
                    result = PointResult(point=point, status="failed",
                                         arch=arch, error=str(exc))
                results[point.content_key()] = result

        # Persist everything fresh (including infeasible verdicts: they
        # are as deterministic as the numbers and just as reusable).
        if self.store is not None:
            for content, result in results.items():
                if not result.reused:
                    self.store.put(keys[content],
                                   {"result": result.to_dict()})

        ordered = tuple(results[p.content_key()] for p in spec.space)
        return SweepReport(
            space_name=spec.space.name,
            spec={
                "verify": spec.verify,
                "budget_margin": spec.budget_margin,
                "mode": spec.mode,
                "space_key": spec.space.content_key(),
            },
            results=ordered,
            reused=reused)


@dataclass(frozen=True)
class _KernelStats:
    cu_cycles: float
    seconds: float
    instructions: int
    energy_j: float


def run_sweep(spec, log=None):
    """Convenience: one-shot sweep of a spec."""
    return SweepRunner(spec, log=log).sweep()
