"""The design space: what one explored configuration *is*, as data.

A :class:`DesignPoint` pins down everything the trim-and-reinvest
study of Sections 3.2/4.2 varies -- the kernel set the architecture is
trimmed for, the base generation (clock-domain settings), the
re-investment shape (CU count, extra VALUs per CU), the datapath
width, and the memory/sampling knobs -- as an immutable, content-
hashable value object.  A :class:`DesignSpace` is a named, ordered
collection of points; :func:`preset` builds the standard ones:

* ``paper`` -- exactly the Figures 6-8 grid: per benchmark, the three
  fixed generations, the trimmed single-CU architecture, and the two
  re-investment strategies at the paper's shapes (3 CUs int / 2 CUs
  FP / 4 CUs INT8 multi-core; 4 INT VALUs int / 1 INT + 3 FP VALUs FP
  multi-thread).
* ``extended`` -- the cartesian sweep "A Statically and Dynamically
  Scalable Soft GPGPU" (Langhammer) motivates: every CU count x VALU
  growth x generation x trim setting, far beyond the paper's grid.

Points are declarative and cheap; feasibility (device fit, the area
budget) is decided by the sweep runner at evaluation time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..core.config import MAX_CUS, MAX_VALUS_PER_CU, ArchConfig
from ..errors import DseError

#: Base architecture specs a point may name; ``trimmed`` derives the
#: application-specific architecture via Algorithm 1 at sweep time.
BASE_CONFIGS = ("original", "dcd", "baseline", "trimmed")

_FIXED = {
    "original": ArchConfig.original,
    "dcd": ArchConfig.dcd,
    "baseline": ArchConfig.baseline,
}


def _sha(payload):
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DesignPoint:
    """One point of the trim x re-investment design space.

    ``extra_valus`` replicate the vector ALU the kernel set actually
    stresses (the SIMF when the trimmed architecture kept it, the SIMD
    otherwise) -- the same greedy direction the Figure 7B planner uses,
    but with the count fixed declaratively so a grid enumerates it.

    ``tag`` is a display/grouping annotation (the ``paper`` preset tags
    points with the figure they reproduce); it is excluded from the
    content key, so two points differing only in tag share results.
    """

    kernels: Tuple[str, ...]
    config: str = "trimmed"
    num_cus: int = 1
    extra_valus: int = 0
    datapath_bits: Optional[int] = None   # None = the kernels' default
    max_groups: Optional[int] = None      # workgroup-sampling cap
    global_mem_size: Optional[int] = None
    tag: str = ""

    def __post_init__(self):
        if isinstance(self.kernels, str):
            object.__setattr__(self, "kernels", (self.kernels,))
        else:
            object.__setattr__(self, "kernels", tuple(self.kernels))
        if not self.kernels:
            raise DseError("a design point needs at least one kernel")
        if not all(isinstance(k, str) and k for k in self.kernels):
            raise DseError(
                "kernel names must be non-empty strings, got {!r}".format(
                    self.kernels))
        if self.config not in BASE_CONFIGS:
            raise DseError(
                "unknown base config {!r}; expected one of {}".format(
                    self.config, ", ".join(BASE_CONFIGS)))
        if not isinstance(self.num_cus, int) or not (
                1 <= self.num_cus <= MAX_CUS):
            raise DseError(
                "num_cus must be an integer in 1..{}, got {!r}".format(
                    MAX_CUS, self.num_cus))
        if not isinstance(self.extra_valus, int) or not (
                0 <= self.extra_valus < MAX_VALUS_PER_CU):
            raise DseError(
                "extra_valus must be an integer in 0..{}, got {!r}".format(
                    MAX_VALUS_PER_CU - 1, self.extra_valus))
        if self.datapath_bits not in (None, 8, 16, 32):
            raise DseError(
                "datapath_bits must be None, 8, 16 or 32, got {!r}".format(
                    self.datapath_bits))
        if self.max_groups is not None and self.max_groups < 1:
            raise DseError("max_groups must be >= 1 when set")

    # ------------------------------------------------------------------

    @property
    def trimmed(self):
        return self.config == "trimmed"

    @property
    def name(self):
        """Deterministic human-readable identifier."""
        shape = "{}cu".format(self.num_cus)
        if self.extra_valus:
            shape += "+{}v".format(self.extra_valus)
        parts = ["+".join(self.kernels), self.config, shape]
        if self.datapath_bits is not None:
            parts.append("{}b".format(self.datapath_bits))
        return "/".join(parts)

    def describe(self):
        return self.name

    def to_dict(self):
        return {
            "kernels": list(self.kernels),
            "config": self.config,
            "num_cus": self.num_cus,
            "extra_valus": self.extra_valus,
            "datapath_bits": self.datapath_bits,
            "max_groups": self.max_groups,
            "global_mem_size": self.global_mem_size,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            kernels=tuple(payload["kernels"]),
            config=payload["config"],
            num_cus=payload["num_cus"],
            extra_valus=payload["extra_valus"],
            datapath_bits=payload.get("datapath_bits"),
            max_groups=payload.get("max_groups"),
            global_mem_size=payload.get("global_mem_size"),
            tag=payload.get("tag", ""),
        )

    def content_key(self):
        """SHA-256 of the point's semantics (``tag`` excluded)."""
        payload = self.to_dict()
        del payload["tag"]
        return _sha("dse-point\x00" + json.dumps(payload, sort_keys=True))

    # ------------------------------------------------------------------

    def resolve_arch(self, trimmed_config=None) -> ArchConfig:
        """Apply the re-investment shape to the point's base config.

        For a ``trimmed`` point the caller supplies the Algorithm 1
        output for this point's kernel set (the TrimResult -> DesignPoint
        plumbing of the sweep runner); fixed-generation points resolve
        on their own.
        """
        if self.trimmed:
            if trimmed_config is None:
                raise DseError(
                    "{}: a trimmed point needs the trimmed ArchConfig"
                    .format(self.name))
            base = trimmed_config
        else:
            base = _FIXED[self.config]()
            if self.datapath_bits is not None:
                base = replace(base, datapath_bits=self.datapath_bits)
        grow_simf = base.num_simf > 0
        arch = base.with_parallelism(
            num_cus=self.num_cus,
            num_simf=base.num_simf + (self.extra_valus if grow_simf else 0),
            num_simd=base.num_simd + (0 if grow_simf else self.extra_valus),
        )
        label = arch.label or arch.generation.value
        return replace(arch, label="{}@{}".format(label, self.name))


@dataclass(frozen=True)
class DesignSpace:
    """A named, ordered set of design points."""

    name: str
    points: Tuple[DesignPoint, ...]
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "points", tuple(self.points))

    def __len__(self):
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def kernel_sets(self):
        """Distinct kernel sets, in first-appearance order."""
        seen, out = set(), []
        for point in self.points:
            if point.kernels not in seen:
                seen.add(point.kernels)
                out.append(point.kernels)
        return out

    def content_key(self):
        return _sha("dse-space\x00" + json.dumps(
            [p.content_key() for p in self.points]))

    def to_dict(self):
        return {
            "name": self.name,
            "description": self.description,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            name=payload["name"],
            points=tuple(DesignPoint.from_dict(p)
                         for p in payload["points"]),
            description=payload.get("description", ""),
        )

    def subset(self, kernels=None, limit=None):
        """Restrict to points whose kernel set intersects ``kernels``."""
        points = self.points
        if kernels is not None:
            wanted = set(kernels)
            points = tuple(p for p in points if wanted & set(p.kernels))
        if limit is not None:
            points = points[:limit]
        return DesignSpace(name=self.name, points=points,
                           description=self.description)

    @staticmethod
    def grid(name, kernel_sets, configs=("baseline", "trimmed"),
             cus=(1,), extra_valus=(0,), datapaths=(None,),
             description=""):
        """Cartesian product of the given axes, one point each."""
        points = []
        for kernels in kernel_sets:
            for config in configs:
                for datapath in datapaths:
                    for num_cus in cus:
                        for extra in extra_valus:
                            points.append(DesignPoint(
                                kernels=tuple(kernels) if not isinstance(
                                    kernels, str) else (kernels,),
                                config=config, num_cus=num_cus,
                                extra_valus=extra, datapath_bits=datapath))
        return DesignSpace(name=name, points=tuple(points),
                           description=description)


# ---------------------------------------------------------------------------
# Presets.
# ---------------------------------------------------------------------------

#: The two cheapest suite kernels with distinct int/FP trims -- the
#: ``--smoke`` kernel pair (2 kernels x 4 points = 8 design points).
PAPER_SMOKE_KERNELS = ("matrix_add_i32", "matrix_mul_f32")

#: Point kinds of the full paper grid, in figure order.
PAPER_POINT_KINDS = ("original", "dcd", "baseline", "trimmed",
                     "multicore", "multithread")

#: Point kinds kept by ``--smoke`` (the application-aware half).
PAPER_SMOKE_KINDS = ("baseline", "trimmed", "multicore", "multithread")


def _paper_shapes(kernel):
    """The paper's per-benchmark re-investment shapes (Figure 6's last
    two columns): multi-core CU count and multi-thread extra VALUs."""
    from ..kernels import KERNELS

    if kernel not in KERNELS:
        raise DseError("unknown benchmark {!r}".format(kernel))
    cls = KERNELS[kernel]
    if cls.datapath_bits == 8:
        return 4, 3            # INT8 NIN: 4 CUs fit (Section 4.2)
    if cls.uses_float:
        return 2, 2            # 2 CUs / 1 INT + 3 FP VALUs
    return 3, 3                # 3 CUs / 4 INT VALUs


def paper_point(kernel, kind):
    """One point of the ``paper`` preset grid."""
    multicore_cus, multithread_valus = _paper_shapes(kernel)
    if kind in ("original", "dcd", "baseline"):
        return DesignPoint(kernels=(kernel,), config=kind,
                           tag="fig6:{}".format(kind))
    if kind == "trimmed":
        return DesignPoint(kernels=(kernel,), config="trimmed",
                           tag="fig6:trimmed")
    if kind == "multicore":
        return DesignPoint(kernels=(kernel,), config="trimmed",
                           num_cus=multicore_cus, tag="fig7a:multicore")
    if kind == "multithread":
        return DesignPoint(kernels=(kernel,), config="trimmed",
                           extra_valus=multithread_valus,
                           tag="fig7b:multithread")
    raise DseError("unknown paper point kind {!r}".format(kind))


def paper_space(kernels=None, kinds=PAPER_POINT_KINDS):
    """The Figures 6-8 configuration grid, per benchmark."""
    from ..kernels.suite import EVAL_CONFIGS

    kernels = tuple(kernels) if kernels is not None \
        else tuple(EVAL_CONFIGS)
    points = tuple(paper_point(kernel, kind)
                   for kernel in kernels for kind in kinds)
    return DesignSpace(
        name="paper", points=points,
        description="the paper's Figures 6-8 grid: fixed generations, "
                    "per-benchmark trim, and both re-investment shapes")


def extended_space(kernels=None):
    """The Langhammer-motivated cartesian sweep beyond the paper."""
    from ..kernels.suite import EVAL_CONFIGS

    kernels = tuple(kernels) if kernels is not None \
        else tuple(EVAL_CONFIGS)
    return DesignSpace.grid(
        "extended",
        kernel_sets=[(k,) for k in kernels],
        configs=("baseline", "trimmed"),
        cus=(1, 2, 3, 4),
        extra_valus=(0, 1, 2, 3),
        description="cartesian trim x CU x VALU sweep (hundreds of "
                    "points; infeasible ones are recorded, not run)")


PRESETS = {
    "paper": paper_space,
    "extended": extended_space,
}


def preset(name, kernels=None, smoke=False):
    """Resolve a preset name (optionally restricted / smoke-sized)."""
    if name not in PRESETS:
        raise DseError(
            "unknown preset {!r}; expected one of {}".format(
                name, ", ".join(sorted(PRESETS))))
    if name == "paper" and smoke:
        space = paper_space(kernels=kernels or PAPER_SMOKE_KERNELS,
                            kinds=PAPER_SMOKE_KINDS)
        return replace(space, name="paper-smoke")
    space = PRESETS[name](kernels=kernels)
    if smoke:
        space = space.subset(limit=8)
        space = replace(space, name="{}-smoke".format(space.name))
    return space
