"""Architecture configurations of the SCRATCH design space.

An :class:`ArchConfig` pins down everything the evaluation varies:

* the **generation** -- Original MIAOW, DCD (dual clock domain), or
  DCD+PM (dual clock + prefetch memory, the paper's *Baseline*),
* the **instruction set** -- full 156-instruction decode, or the
  surviving set after SCRATCH trimming,
* the **parallel shape** -- number of compute units (multi-core) and
  of integer/FP VALU blocks per CU (multi-thread), the two
  re-investment strategies of Section 4.2,
* the **datapath width** -- 32-bit, or the shortened 8-bit format the
  NIN benchmark explores ("following recent trends in DNNs, we also
  vary the numerical precision from a 32-bit format to shortened
  8-bit", Section 4.2).

Configs are immutable value objects; the trimming tool and parallelism
planner derive new ones rather than mutating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import FrozenSet, Optional

from ..errors import TrimError
from ..isa.tables import ISA
from ..mem.params import (
    DCD_PM_TIMING,
    DCD_TIMING,
    ORIGINAL_TIMING,
    MemoryTimingParams,
)

#: Architectural VALU limit of the MIAOW compute unit (Section 2.1).
MAX_VALUS_PER_CU = 4

#: Practical cap on CU count: the single ultra-threaded dispatcher and
#: the AXI interconnect fan-out stop scaling usefully beyond this.
MAX_CUS = 8


class Generation(enum.Enum):
    """The three fixed-function system generations of Figure 6."""

    ORIGINAL = "original"
    DCD = "dcd"
    DCD_PM = "dcd+pm"

    @property
    def memory_timing(self):
        return {
            Generation.ORIGINAL: ORIGINAL_TIMING,
            Generation.DCD: DCD_TIMING,
            Generation.DCD_PM: DCD_PM_TIMING,
        }[self]

    @property
    def clock_ratio(self):
        return self.memory_timing.clock_ratio


@dataclass(frozen=True)
class ArchConfig:
    """One point in the SCRATCH architecture design space."""

    generation: Generation = Generation.DCD_PM
    num_cus: int = 1
    num_simd: int = 1
    num_simf: int = 1
    supported: Optional[FrozenSet[str]] = None  # None = full 156-instruction set
    datapath_bits: int = 32
    label: str = ""

    def __post_init__(self):
        for name in ("num_cus", "num_simd", "num_simf"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise TrimError(
                    "{} must be an integer, got {!r}".format(name, value))
        if self.num_cus < 1:
            raise TrimError("an architecture needs at least one compute unit")
        if self.num_cus > MAX_CUS:
            raise TrimError(
                "num_cus={} exceeds the {}-CU dispatcher/interconnect "
                "limit".format(self.num_cus, MAX_CUS))
        if self.num_simd < 0 or self.num_simf < 0:
            raise TrimError("negative VALU counts are not a thing")
        if self.num_simd == 0 and self.num_simf == 0:
            raise TrimError("a compute unit needs at least one vector ALU")
        if max(self.num_simd, self.num_simf) > MAX_VALUS_PER_CU:
            raise TrimError(
                "{} VALUs of one kind exceed the MIAOW compute unit's "
                "{}-VALU limit".format(max(self.num_simd, self.num_simf),
                                       MAX_VALUS_PER_CU))
        if self.datapath_bits not in (8, 16, 32):
            raise TrimError("datapath width must be 8, 16 or 32 bits")

    # ------------------------------------------------------------------

    @property
    def trimmed(self):
        return self.supported is not None

    @property
    def instruction_count(self):
        if self.supported is None:
            return len(ISA.implemented())
        return len(self.supported)

    def supports(self, name):
        if self.supported is None:
            return name in ISA and ISA.by_name(name).implemented
        return name in self.supported

    @property
    def memory_timing(self) -> MemoryTimingParams:
        return self.generation.memory_timing

    @property
    def has_prefetch(self):
        return self.generation is Generation.DCD_PM

    def describe(self):
        shape = "{}CU x ({} SIMD + {} SIMF)".format(
            self.num_cus, self.num_simd, self.num_simf)
        trim = "trimmed to {} instructions".format(self.instruction_count) \
            if self.trimmed else "full ISA"
        return "{} [{}] {} @{}b".format(
            self.label or self.generation.value, shape, trim, self.datapath_bits)

    def to_dict(self):
        """Full semantic state (lossless -- see :meth:`from_dict`)."""
        return {
            "generation": self.generation.value,
            "num_cus": self.num_cus,
            "num_simd": self.num_simd,
            "num_simf": self.num_simf,
            "supported": (None if self.supported is None
                          else sorted(self.supported)),
            "datapath_bits": self.datapath_bits,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a configuration from a :meth:`to_dict` payload."""
        supported = payload.get("supported")
        return cls(
            generation=Generation(payload["generation"]),
            num_cus=payload["num_cus"],
            num_simd=payload["num_simd"],
            num_simf=payload["num_simf"],
            supported=None if supported is None else frozenset(supported),
            datapath_bits=payload["datapath_bits"],
            label=payload.get("label", ""),
        )

    def with_parallelism(self, num_cus=None, num_simd=None, num_simf=None):
        return replace(
            self,
            num_cus=self.num_cus if num_cus is None else num_cus,
            num_simd=self.num_simd if num_simd is None else num_simd,
            num_simf=self.num_simf if num_simf is None else num_simf,
        )

    # -- canonical configurations ----------------------------------------

    @staticmethod
    def original():
        """The original MIAOW FPGA system (single clock, no prefetch)."""
        return ArchConfig(generation=Generation.ORIGINAL, label="original")

    @staticmethod
    def dcd():
        """Original + dual clock domain."""
        return ArchConfig(generation=Generation.DCD, label="dcd")

    @staticmethod
    def baseline():
        """DCD + prefetch memory: the paper's Baseline architecture."""
        return ArchConfig(generation=Generation.DCD_PM, label="baseline")
