"""The SCRATCH core-trimming tool (Algorithm 1, second step).

Given the required-instruction dictionary from the analyser, the
trimmer produces an application-specific architecture:

* functional units with no required instructions are removed outright
  (lines 13-19 -- their instantiation deleted and output signals
  grounded; here, the unit count drops to zero and the area model
  removes the block and its register-file ports),
* within surviving units, unsupported instructions are deleted from
  both the unit's second-stage decode and the main Decode unit
  (lines 20-28).

The result is a :class:`TrimResult`: the trimmed
:class:`~repro.core.config.ArchConfig`, its synthesis report, and the
resource savings relative to the untrimmed baseline -- the quantities
Figure 6's per-benchmark panels report.

Trimming never touches behaviour: the surviving set is exactly what
the binary can execute, so runtime is unchanged and the gains are all
area/power (Section 3.2).  The safety property (running a *different*
binary must fail loudly) is enforced by the compute-unit simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..errors import TrimError
from ..fpga.synthesis import Synthesizer, SynthesisReport
from ..isa.categories import FunctionalUnit
from ..isa.tables import ISA
from ..obs.serialize import SerializableMixin
from .analyzer import KernelRequirements, analyze_application, analyze_program
from .config import ArchConfig


@dataclass
class TrimResult(SerializableMixin):
    """Everything the trimming tool reports for one application."""

    requirements: KernelRequirements
    baseline: ArchConfig
    config: ArchConfig
    baseline_report: SynthesisReport
    report: SynthesisReport
    usage: Dict[FunctionalUnit, float] = field(default_factory=dict)

    @property
    def savings(self):
        """Fractional resource savings over the baseline (Figure 6)."""
        return self.report.savings_vs(self.baseline_report)

    @property
    def removed_units(self):
        out = []
        if self.config.num_simf == 0:
            out.append(FunctionalUnit.SIMF)
        if self.config.num_simd == 0:
            out.append(FunctionalUnit.SIMD)
        return out

    @property
    def instructions_kept(self):
        return len(self.config.supported)

    @property
    def instructions_removed(self):
        return len(ISA.implemented()) - self.instructions_kept

    def power_saving(self):
        """Fractional total-power reduction vs the baseline."""
        base = self.baseline_report.power.total
        return (base - self.report.power.total) / base

    def to_dict(self):
        """The trim report under the repo-wide serialization convention.

        This is what ``repro trim --json`` prints (the CLI adds the
        optional parallel-planning block on top).  Besides the derived
        summary, the payload carries the full constituent state --
        requirements, both configurations, both synthesis reports -- so
        :meth:`from_dict` rebuilds an equal :class:`TrimResult` (the
        lossless round trip the DSE result store relies on).
        """
        return {
            "kernels": list(self.requirements.kernels),
            "instructions_kept": self.instructions_kept,
            "instructions_removed": self.instructions_removed,
            "removed_units": [u.value for u in self.removed_units],
            "usage": {u.value: f for u, f in sorted(
                self.usage.items(), key=lambda kv: kv[0].value)},
            "savings": dict(self.savings),
            "power_w": {
                "baseline": self.baseline_report.power.total,
                "trimmed": self.report.power.total,
                "saving_fraction": self.power_saving(),
            },
            "requirements": self.requirements.to_dict(),
            "baseline_arch": self.baseline.to_dict(),
            "arch": self.config.to_dict(),
            "baseline_report": self.baseline_report.to_dict(),
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild from a :meth:`to_dict` payload (derived summary keys
        are ignored and recomputed)."""
        return cls(
            requirements=KernelRequirements.from_dict(
                payload["requirements"]),
            baseline=ArchConfig.from_dict(payload["baseline_arch"]),
            config=ArchConfig.from_dict(payload["arch"]),
            baseline_report=SynthesisReport.from_dict(
                payload["baseline_report"]),
            report=SynthesisReport.from_dict(payload["report"]),
            usage={FunctionalUnit(unit): fraction
                   for unit, fraction in payload["usage"].items()},
        )

    def summary(self):
        lines = [
            "SCRATCH trim report for {}".format(
                ", ".join(self.requirements.kernels) or "<application>"),
            "  instructions: {} kept / {} removed (of {})".format(
                self.instructions_kept, self.instructions_removed,
                len(ISA.implemented())),
            "  removed units: {}".format(
                ", ".join(u.value for u in self.removed_units) or "none"),
        ]
        for unit, frac in sorted(self.usage.items(), key=lambda kv: kv[0].value):
            lines.append("  usage {:>5}: {:5.1%}".format(unit.value, frac))
        for res, frac in sorted(self.savings.items()):
            lines.append("  saved {:>5}: {:5.1%}".format(res, frac))
        lines.append("  power: {} -> {}".format(
            self.baseline_report.power, self.report.power))
        return "\n".join(lines)


class TrimmingTool:
    """The compile-time architecture specialisation tool (Figure 3)."""

    def __init__(self, registry=ISA, synthesizer=None):
        self.registry = registry
        self.synthesizer = synthesizer or Synthesizer()

    # -- Algorithm 1 -------------------------------------------------------

    def analyze(self, programs):
        """Step one: required instructions per functional unit."""
        if hasattr(programs, "instructions"):  # a single Program
            return analyze_program(programs, self.registry)
        return analyze_application(programs, self.registry)

    def trim(self, programs, baseline=None, datapath_bits=32):
        """Run both steps and synthesise the trimmed architecture.

        ``programs`` is one assembled kernel or an iterable of them (an
        application).  ``baseline`` defaults to the paper's DCD+PM
        configuration; the generation carries over, so one can also
        trim the original architecture for ablation studies.
        """
        baseline = baseline or ArchConfig.baseline()
        requirements = self.analyze(programs)
        supported = requirements.names
        if not supported:
            raise TrimError("application binary contains no instructions")

        uses_simd = requirements.uses_unit(FunctionalUnit.SIMD)
        uses_simf = requirements.uses_unit(FunctionalUnit.SIMF)
        if not (uses_simd or uses_simf):
            # A compute unit keeps at least one (integer) vector ALU:
            # the dispatcher's ID registers land in VGPRs.
            uses_simd = True
        config = replace(
            baseline,
            supported=frozenset(supported),
            num_simd=baseline.num_simd if uses_simd else 0,
            num_simf=baseline.num_simf if uses_simf else 0,
            datapath_bits=datapath_bits,
            label="{}+trim".format(baseline.label or baseline.generation.value),
        )
        baseline_report = self.synthesizer.synthesize(baseline)
        report = self.synthesizer.synthesize(config)
        return TrimResult(
            requirements=requirements,
            baseline=baseline,
            config=config,
            baseline_report=baseline_report,
            report=report,
            usage=requirements.usage_by_unit(self.registry),
        )
