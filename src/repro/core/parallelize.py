"""Parallelism re-investment: spend freed area on more compute.

After trimming, "the released hardware resources can then be
reallocated for replicating dedicated compute or functional units"
(Section 3.2).  The paper explores two directions (Section 4.2):

* **multi-core** -- replicate whole compute units, each with a single
  VALU of every needed type (Figure 7A's "several CUs, but only 1 VALU
  per CU"),
* **multi-thread** -- keep one CU and replicate its vector ALUs
  (Figure 7B's "1 CU, but multiple VALUs").  MIAOW's compute unit
  supports **up to four** VALUs (Section 2.1), so four is the hard
  architectural cap regardless of area.

Both planners greedily grow the configuration while the synthesis
model says it still fits the device (with its routing ceiling), which
is what limits the paper's designs to 3 CUs at 32-bit -- and lets the
INT8 NIN variant reach 4 (Section 4.2).
"""

from __future__ import annotations

from ..errors import TrimError
from ..fpga.resources import XC7VX690T
from ..fpga.synthesis import Synthesizer
# The caps live with ArchConfig, which validates them at construction;
# re-exported here because the planners are their historical home.
from .config import MAX_CUS, MAX_VALUS_PER_CU  # noqa: F401


def plan_multicore(config, synthesizer=None, device=XC7VX690T):
    """Grow the CU count while the design still fits the device."""
    synthesizer = synthesizer or Synthesizer(device=device)
    best = config.with_parallelism(num_cus=1)
    if not synthesizer.synthesize(best).fits():
        raise TrimError(
            "even a single CU of {} does not fit {}".format(
                config.describe(), device.name))
    for n in range(2, MAX_CUS + 1):
        candidate = config.with_parallelism(num_cus=n)
        if not synthesizer.synthesize(candidate).fits():
            break
        best = candidate
    return best


def plan_multithread(config, synthesizer=None, device=XC7VX690T):
    """Grow per-CU VALU counts (single CU) while the design fits.

    Replicates the unit the application actually stresses: the SIMF
    when the kernel uses floating point, otherwise the SIMD -- matching
    the paper's per-benchmark configurations (``1 CU / 4 INT VALUs``
    for integer kernels, ``1 CU / 1 INT + 3 FP VALUs`` for FP ones).
    """
    synthesizer = synthesizer or Synthesizer(device=device)
    best = config.with_parallelism(num_cus=1)
    if not synthesizer.synthesize(best).fits():
        raise TrimError(
            "even a single CU of {} does not fit {}".format(
                config.describe(), device.name))
    grow_simf = config.num_simf > 0
    while True:
        total = best.num_simd + best.num_simf
        if total >= MAX_VALUS_PER_CU:
            break
        if grow_simf:
            candidate = best.with_parallelism(num_simf=best.num_simf + 1)
        else:
            candidate = best.with_parallelism(num_simd=best.num_simd + 1)
        if not synthesizer.synthesize(candidate).fits():
            break
        best = candidate
    return best


def plan(config, mode, synthesizer=None, device=XC7VX690T):
    """Dispatch on ``mode``: ``"multicore"`` or ``"multithread"``."""
    if mode == "multicore":
        return plan_multicore(config, synthesizer, device)
    if mode == "multithread":
        return plan_multithread(config, synthesizer, device)
    raise TrimError("unknown parallelism mode {!r}".format(mode))
