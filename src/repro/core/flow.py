"""ScratchFlow: the end-to-end SCRATCH pipeline (Figure 3).

One object that walks an application through the whole toolchain:

1. **compile** -- the benchmark's kernels are assembled to Southern
   Islands binaries (our stand-in for AMD CodeXL),
2. **analyse** -- Algorithm 1 step one builds the per-functional-unit
   required-instruction dictionary,
3. **trim** -- Algorithm 1 step two prunes the architecture; the
   synthesis model prices the result (our stand-in for Vivado),
4. **re-invest** -- the parallelism planner grows CUs or VALUs into
   the freed area,
5. **run** -- the benchmark executes on the simulated board and the
   metrics layer reports time, power, energy and instructions/Joule.

Example::

    flow = ScratchFlow(MatrixAddI32(n=64))
    result = flow.trim()                      # TrimResult
    arch = flow.plan("multicore")             # e.g. 3 CUs
    metrics = flow.run(arch)                  # RunMetrics
    base = flow.run(ArchConfig.original())
    print(metrics.speedup_vs(base))
"""

from __future__ import annotations

from ..exec import BenchmarkWorkload, ExecutionRequest, execute
from ..fpga.resources import XC7VX690T
from ..fpga.synthesis import Synthesizer
from ..runtime.metrics import RunMetrics
from .config import ArchConfig
from .parallelize import plan as plan_parallelism
from .trimmer import TrimmingTool, TrimResult


class ScratchFlow:
    """Drives one benchmark through compile/trim/plan/run."""

    def __init__(self, benchmark, baseline=None, device=XC7VX690T,
                 max_groups=None):
        self.benchmark = benchmark
        self.baseline = baseline or ArchConfig.baseline()
        self.device = device
        self.synthesizer = Synthesizer(device=device)
        self.tool = TrimmingTool(synthesizer=self.synthesizer)
        self.max_groups = max_groups
        self._trim_result = None

    # -- pipeline steps ------------------------------------------------------

    @property
    def programs(self):
        """The application's assembled kernels (the CodeXL step)."""
        return self.benchmark.programs()

    def trim(self) -> TrimResult:
        """Analyse + trim (cached -- the result is deterministic)."""
        if self._trim_result is None:
            self._trim_result = self.tool.trim(
                self.programs, baseline=self.baseline,
                datapath_bits=self.benchmark.datapath_bits)
        return self._trim_result

    def plan(self, mode) -> ArchConfig:
        """Re-invest freed area: ``"multicore"`` or ``"multithread"``."""
        return plan_parallelism(self.trim().config, mode,
                                synthesizer=self.synthesizer,
                                device=self.device)

    # -- execution -------------------------------------------------------------

    def run(self, arch=None, verify=True, max_groups=None,
            engine=None) -> RunMetrics:
        """Execute the benchmark on ``arch`` and measure it.

        ``arch=None`` runs the (trimmed, single-CU) architecture.  The
        synthesis report of the architecture supplies the power figures
        for the energy metrics.  Execution goes through the shared
        :mod:`repro.exec` layer, so repeated runs of one configuration
        (CLI ``--repeat``, the Figure 7 sweeps) reuse warm boards.
        ``engine`` pins a launch engine (one of
        :data:`repro.exec.ENGINE_NAMES`; default auto-resolves per
        board).
        """
        arch = arch or self.trim().config
        report = self.synthesizer.synthesize(arch)
        request = ExecutionRequest(
            workload=BenchmarkWorkload(instance=self.benchmark),
            arch=arch,
            engine=engine,
            verify=verify,
            max_groups=(max_groups if max_groups is not None
                        else self.max_groups),
            report=report,
            label="{}@{}".format(self.benchmark.name, arch.describe()),
        )
        return execute(request).metrics

    def evaluate(self, modes=("multicore", "multithread"), verify=True,
                 max_groups=None):
        """Run the full Figure 7 comparison set for this benchmark.

        Returns ``{label: RunMetrics}`` for original, dcd, baseline,
        trimmed, and each requested parallelism mode.
        """
        results = {}
        results["original"] = self.run(ArchConfig.original(), verify,
                                       max_groups)
        results["dcd"] = self.run(ArchConfig.dcd(), verify, max_groups)
        results["baseline"] = self.run(self.baseline, verify, max_groups)
        results["trimmed"] = self.run(self.trim().config, verify, max_groups)
        for mode in modes:
            results[mode] = self.run(self.plan(mode), verify, max_groups)
        return results

    @staticmethod
    def for_kernel(benchmark_cls, **params):
        """Convenience: build a flow from a benchmark class."""
        return ScratchFlow(benchmark_cls(**params))
