"""SCRATCH core: configs, kernel analysis, trimming, parallelism, flow."""

from .analyzer import KernelRequirements, analyze_application, analyze_program
from .config import ArchConfig, Generation
from .flow import ScratchFlow
from .histogram import InstructionMix
from .parallelize import MAX_VALUS_PER_CU, plan_multicore, plan_multithread
from .netlist import emit_netlist, grounded_signals, removed_instructions
from .reconfig import LaunchEvent, ReconfigPlan, ReconfigurationPlanner
from .report import figure6_row, figure7_row, render_figure6, render_figure7
from .trimmer import TrimmingTool, TrimResult

__all__ = [
    "ArchConfig", "Generation", "ScratchFlow",
    "KernelRequirements", "analyze_program", "analyze_application",
    "InstructionMix", "TrimmingTool", "TrimResult",
    "plan_multicore", "plan_multithread", "MAX_VALUS_PER_CU",
    "figure6_row", "figure7_row", "render_figure6", "render_figure7",
    "LaunchEvent", "ReconfigPlan", "ReconfigurationPlanner",
    "emit_netlist", "grounded_signals", "removed_instructions",
]
