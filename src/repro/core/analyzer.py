"""Kernel requirements identification (Algorithm 1, first step).

This is the paper's lines 2-11: walk the application's binary, decode
every instruction (``miaow.decode(line)``), and build the dictionary
of required instructions per functional unit.  The analysis is static
-- it runs at compile time on the binary alone, before anything
executes -- which is what lets SCRATCH emit a trimmed architecture
without profiling hardware.

A *dynamic* analysis (instruction execution counts, via the simulator)
also lives here because Figure 4's characterisation and Figure 6's
instruction-usage panels are built from executed-instruction
statistics; the trimming decision itself uses only the static set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..isa.categories import FunctionalUnit
from ..isa.tables import ISA


@dataclass
class KernelRequirements:
    """The required-instruction dictionary of Algorithm 1.

    ``per_unit`` maps each functional unit to the set of instruction
    mnemonics the analysed binaries need from it; ``names`` is the flat
    union.  Requirements from several kernels merge with ``|=`` --
    per-application trimming (Section 4.3) is the union over the
    application's kernels.
    """

    per_unit: Dict[FunctionalUnit, Set[str]] = field(default_factory=dict)
    kernels: List[str] = field(default_factory=list)

    @property
    def names(self) -> FrozenSet[str]:
        out = set()
        for names in self.per_unit.values():
            out |= names
        return frozenset(out)

    def required_units(self):
        """Functional units with at least one required instruction."""
        return {unit for unit, names in self.per_unit.items() if names}

    def uses_unit(self, unit):
        return bool(self.per_unit.get(unit))

    @property
    def uses_float(self):
        return self.uses_unit(FunctionalUnit.SIMF)

    def __ior__(self, other):
        for unit, names in other.per_unit.items():
            self.per_unit.setdefault(unit, set()).update(names)
        self.kernels.extend(k for k in other.kernels if k not in self.kernels)
        return self

    def usage_fraction(self, unit, registry=ISA):
        """Fraction of the unit's supported instructions the app uses.

        This is the "Instruction Usage (percentage over supported
        instructions)" panel of Figure 6.
        """
        supported = registry.for_unit(unit)
        if not supported:
            return 0.0
        used = self.per_unit.get(unit, set())
        return len(used & {s.name for s in supported}) / len(supported)

    def usage_by_unit(self, registry=ISA):
        return {
            unit: self.usage_fraction(unit, registry)
            for unit in (FunctionalUnit.SALU, FunctionalUnit.SIMD,
                         FunctionalUnit.SIMF, FunctionalUnit.LSU)
        }

    def to_dict(self):
        """Lossless snapshot of the requirements dictionary."""
        return {
            "per_unit": {unit.value: sorted(names)
                         for unit, names in sorted(
                             self.per_unit.items(),
                             key=lambda kv: kv[0].value)},
            "kernels": list(self.kernels),
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            per_unit={FunctionalUnit(value): set(names)
                      for value, names in payload["per_unit"].items()},
            kernels=list(payload["kernels"]),
        )


def analyze_program(program, registry=ISA):
    """Algorithm 1, step one, over a single assembled kernel.

    Every decoded instruction contributes ``(opcode, type)`` to its
    functional unit's required list; the Branch & Message path is
    included so the surviving ISA always contains the control
    instructions the binary needs (``s_endpgm`` at minimum).
    """
    req = KernelRequirements(kernels=[program.name])
    for inst in program.instructions:
        req.per_unit.setdefault(inst.spec.unit, set()).add(inst.spec.name)
    return req


def analyze_application(programs, registry=ISA):
    """Union of requirements over an application's kernels."""
    merged = KernelRequirements()
    for program in programs:
        merged |= analyze_program(program, registry)
    return merged


def dynamic_counts(per_name_counts, registry=ISA):
    """Aggregate executed-instruction counts per functional unit."""
    per_unit = {}
    for name, count in per_name_counts.items():
        unit = registry.by_name(name).unit
        per_unit[unit] = per_unit.get(unit, 0) + count
    return per_unit
