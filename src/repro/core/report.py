"""Human-readable reports: the Figure 6 panel and Figure 7 series.

These renderers produce the same rows the paper's figures plot, as
plain text tables -- the benchmark harness prints them so a run of
``pytest benchmarks/`` regenerates every figure's content.
"""

from __future__ import annotations

from ..isa.categories import FunctionalUnit
from ..isa.tables import ISA

_UNITS = (FunctionalUnit.SALU, FunctionalUnit.SIMD, FunctionalUnit.SIMF,
          FunctionalUnit.LSU)
_UNIT_LABEL = {
    FunctionalUnit.SALU: "SALU",
    FunctionalUnit.SIMD: "iVALU",
    FunctionalUnit.SIMF: "fpVALU",
    FunctionalUnit.LSU: "LSU",
}


def figure6_row(name, trim_result, multicore=None, multithread=None):
    """One benchmark column of Figure 6, as a dict of plain values."""
    usage = {
        _UNIT_LABEL[u]: trim_result.usage.get(u, 0.0) for u in _UNITS
    }
    row = {
        "benchmark": name,
        "usage": usage,
        "savings": trim_result.savings,
        "power_static_w": trim_result.report.power.static,
        "power_dynamic_w": trim_result.report.power.dynamic,
    }
    if multicore is not None:
        row["multicore"] = {
            "cus": multicore.num_cus,
            "int_valus": multicore.num_simd,
            "fp_valus": multicore.num_simf,
        }
    if multithread is not None:
        row["multithread"] = {
            "cus": multithread.num_cus,
            "int_valus": multithread.num_simd,
            "fp_valus": multithread.num_simf,
        }
    return row


def render_figure6(rows):
    """Render Figure 6's per-benchmark panels as a text table."""
    header = ("{:<26} {:>5} {:>6} {:>7} {:>5} | {:>5} {:>5} {:>5} {:>6} | "
              "{:>6} {:>6} | {:>8} {:>8}").format(
        "benchmark", "SALU", "iVALU", "fpVALU", "LSU",
        "FF", "LUT", "DSP", "BRAM", "stat W", "dyn W", "mcore", "mthread")
    lines = [header, "-" * len(header)]
    for row in rows:
        mc = row.get("multicore", {})
        mt = row.get("multithread", {})
        lines.append(
            ("{:<26} {:>5.0%} {:>6.0%} {:>7.0%} {:>5.0%} | "
             "{:>5.0%} {:>5.0%} {:>5.0%} {:>6.0%} | {:>6.2f} {:>6.2f} | "
             "{:>8} {:>8}").format(
                row["benchmark"],
                row["usage"]["SALU"], row["usage"]["iVALU"],
                row["usage"]["fpVALU"], row["usage"]["LSU"],
                row["savings"]["ff"], row["savings"]["lut"],
                row["savings"]["dsp"], row["savings"]["bram"],
                row["power_static_w"], row["power_dynamic_w"],
                "{}c/{}i/{}f".format(mc.get("cus", "-"),
                                     mc.get("int_valus", "-"),
                                     mc.get("fp_valus", "-")),
                "{}c/{}i/{}f".format(mt.get("cus", "-"),
                                     mt.get("int_valus", "-"),
                                     mt.get("fp_valus", "-")),
            ))
    return "\n".join(lines)


def render_figure5(trim_result, columns=3):
    """Render a trim the way the paper's Figure 5 draws it: per
    functional unit, the supported instruction list with the removed
    ones shadowed (here: struck through with ``x``)."""
    supported = trim_result.config.supported or frozenset(
        s.name for s in ISA.implemented())
    blocks = []
    for unit in _UNITS:
        specs = sorted(ISA.for_unit(unit), key=lambda s: (s.fmt.value, s.name))
        lines = ["{} ({})".format(_UNIT_LABEL[unit],
                                  "kept" if any(s.name in supported
                                                for s in specs)
                                  else "REMOVED")]
        current_fmt = None
        for spec in specs:
            if spec.fmt is not current_fmt:
                current_fmt = spec.fmt
                lines.append("  [{}]".format(spec.fmt.value.upper()))
            marker = "  " if spec.name in supported else "x "
            lines.append("   {} {}".format(marker, spec.name))
        blocks.append("\n".join(lines))
    return ("\n" + "-" * 40 + "\n").join(blocks)


def figure7_row(name, metrics):
    """One benchmark group of Figure 7: speedups + IPJ gains.

    ``metrics`` maps config label -> RunMetrics and must contain at
    least ``original`` and ``baseline``.
    """
    original = metrics["original"]
    baseline = metrics["baseline"]
    row = {"benchmark": name}
    for label, m in metrics.items():
        row[label] = {
            "seconds": m.seconds,
            "speedup_vs_original": original.seconds / m.seconds,
            "speedup_vs_baseline": baseline.seconds / m.seconds,
            "ipj_gain_vs_original": m.ipj / original.ipj,
            "ipj_gain_vs_baseline": m.ipj / baseline.ipj,
        }
    return row


def render_figure7(rows, mode_label):
    """Render one half of Figure 7 (A: multicore, B: multithread)."""
    header = "{:<28} {:>12} {:>12} {:>12} {:>12}".format(
        "benchmark ({})".format(mode_label),
        "vs orig", "vs baseline", "IPJ vs orig", "IPJ vs base")
    lines = [header, "-" * len(header)]
    for row in rows:
        m = row[mode_label]
        lines.append("{:<28} {:>11.1f}x {:>11.2f}x {:>11.1f}x {:>11.2f}x"
                     .format(row["benchmark"],
                             m["speedup_vs_original"],
                             m["speedup_vs_baseline"],
                             m["ipj_gain_vs_original"],
                             m["ipj_gain_vs_baseline"]))
    return "\n".join(lines)
