"""Structural netlist emission: Algorithm 1's actual output artefact.

The paper's Trimming-Tool takes "MIAOW's hardware description files as
input" and writes back modified Verilog: unused functional units have
their *instantiations removed and output signals grounded* (Algorithm 1
lines 15-17), and surviving units lose the decode legs of unused
instructions (lines 23-25).

This module emits the same artefact at a structural level: a
synthesizable-looking description of the trimmed compute unit --
which module instances exist, which instruction decode legs each
carries, which output signals were grounded.  It is what a user would
diff against the full CU to review a trim, and what a downstream
Verilog generator would consume.

The rendering is deterministic: same architecture in, byte-identical
netlist out (tested), so netlists can be content-hashed to identify
architecture variants.
"""

from __future__ import annotations

from ..isa.categories import FunctionalUnit
from ..isa.tables import ISA

#: Output signals grounded when a whole unit is removed (the signal
#: names follow MIAOW's CU top-level port list).
UNIT_OUTPUT_SIGNALS = {
    FunctionalUnit.SALU: ("salu_result", "salu_scc", "salu_busy"),
    FunctionalUnit.SIMD: ("simd_result", "simd_vcc", "simd_busy"),
    FunctionalUnit.SIMF: ("simf_result", "simf_vcc", "simf_busy"),
    FunctionalUnit.LSU: ("lsu_result", "lsu_ack", "lsu_busy"),
}

_MODULE_OF_UNIT = {
    FunctionalUnit.SALU: "salu",
    FunctionalUnit.SIMD: "simd_alu",
    FunctionalUnit.SIMF: "simf_alu",
    FunctionalUnit.LSU: "lsu",
}


def _unit_instances(config, unit):
    if unit is FunctionalUnit.SIMD:
        return config.num_simd
    if unit is FunctionalUnit.SIMF:
        return config.num_simf
    return 1


def _supported_names(config):
    if config.supported is None:
        return {s.name for s in ISA.implemented()}
    return set(config.supported)


def emit_netlist(config):
    """Render the trimmed compute unit as a structural netlist string."""
    supported = _supported_names(config)
    lines = [
        "// SCRATCH trimmed compute unit",
        "// generation: {}".format(config.generation.value),
        "// datapath: {} bits".format(config.datapath_bits),
        "// instructions: {} of {}".format(
            len(supported & {s.name for s in ISA.implemented()}),
            len(ISA.implemented())),
        "",
        "module compute_unit (",
        "  input clk_cu, input rst,",
        "  // AXI interconnect + dispatcher interface elided",
        ");",
        "",
        "  fetch_unit fetch0 (.clk(clk_cu));",
        "  wavepool #(.DEPTH(40)) wavepool0 (.clk(clk_cu));",
        "  issue_unit issue0 (.clk(clk_cu));",
        "  sgpr_file sgpr0 (.clk(clk_cu));",
        "  vgpr_file #(.WIDTH({})) vgpr0 (.clk(clk_cu));".format(
            64 * config.datapath_bits),
    ]

    # Decode unit: one case-leg per surviving instruction.
    lines.append("")
    lines.append("  decode_unit decode0 (.clk(clk_cu));")
    for spec in sorted(ISA.implemented(), key=lambda s: s.name):
        keep = spec.name in supported
        lines.append("  {} decode_leg [{}] {};".format(
            "  " if keep else "//",
            spec.fmt.value.upper(), spec.name))

    # Execution units.
    for unit in (FunctionalUnit.SALU, FunctionalUnit.SIMD,
                 FunctionalUnit.SIMF, FunctionalUnit.LSU):
        unit_insts = sorted(
            s.name for s in ISA.for_unit(unit) if s.name in supported)
        instances = _unit_instances(config, unit)
        lines.append("")
        if not unit_insts or instances == 0:
            lines.append("  // {} removed by SCRATCH".format(
                _MODULE_OF_UNIT[unit]))
            for signal in UNIT_OUTPUT_SIGNALS[unit]:
                lines.append("  assign {} = '0;  // grounded".format(signal))
            continue
        for index in range(instances):
            lines.append("  {module} {module}{i} (.clk(clk_cu));".format(
                module=_MODULE_OF_UNIT[unit], i=index))
        for name in unit_insts:
            lines.append("    // op: {}".format(name))

    if config.has_prefetch:
        lines.append("")
        lines.append("  prefetch_buffer #(.BRAMS(928)) pm0 (.clk(clk_cu));")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def removed_instructions(config):
    """The decode legs Algorithm 1 deleted, sorted."""
    supported = _supported_names(config)
    return sorted(s.name for s in ISA.implemented()
                  if s.name not in supported)


def grounded_signals(config):
    """Output signals grounded by whole-unit removal."""
    supported = _supported_names(config)
    grounded = []
    for unit, signals in UNIT_OUTPUT_SIGNALS.items():
        present = any(s.name in supported for s in ISA.for_unit(unit))
        if unit is FunctionalUnit.SIMD and config.num_simd == 0:
            present = False
        if unit is FunctionalUnit.SIMF and config.num_simf == 0:
            present = False
        if not present:
            grounded.extend(signals)
    return sorted(grounded)
