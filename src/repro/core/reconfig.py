"""Per-kernel trimming with FPGA reconfiguration (the Section 4.3 study).

The paper's discussion: instead of one application-level architecture,
"trimming could be applied at a per-kernel level, with reconfiguration
occurring between kernel calls", mitigated by partial reconfiguration
of just the vector-unit region; whether that wins "depends on the
ratio between kernel execution time and architecture reconfiguration
time".

This module turns that discussion into a planner.  Given an observed
launch trace (which kernel ran when, for how long) and per-kernel trim
results, it prices both strategies in energy:

* **application-level** -- one union architecture, no reconfiguration,
  every kernel pays the union's power;
* **per-kernel** -- each kernel runs on its own (smaller, cooler)
  architecture, but every switch between *different* kernels costs a
  partial reconfiguration (time at full board power).

and recommends the cheaper one.  The paper's qualitative conclusions
fall out: applications that alternate kernels quickly (CNN conv/pool)
should trim at application level; long-running single-kernel phases
can afford per-kernel architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import TrimError
from ..soc.clocks import CU_CLOCK_HZ
from .trimmer import TrimmingTool

#: Cycles for partial reconfiguration of the vector-unit region
#: (ZyCAP-class controller, few-hundred-KiB partial bitstream at
#: ~380 MB/s -> high hundreds of microseconds at the 50 MHz CU clock).
PARTIAL_RECONFIG_CYCLES = 40_000
#: Cycles for a full-bitstream reconfiguration (tens of milliseconds).
FULL_RECONFIG_CYCLES = 2_500_000
#: Board power while reconfiguring (configuration logic + static).
RECONFIG_POWER_W = 2.5


@dataclass(frozen=True)
class LaunchEvent:
    """One kernel launch in the observed trace."""

    kernel: str
    cu_cycles: float


@dataclass
class StrategyCost:
    """Time/energy of one trimming strategy over a trace."""

    label: str
    exec_seconds: float
    reconfig_seconds: float
    energy_joules: float

    @property
    def total_seconds(self):
        return self.exec_seconds + self.reconfig_seconds


@dataclass
class ReconfigPlan:
    """The planner's verdict for one application trace."""

    application: StrategyCost
    per_kernel: StrategyCost
    switches: int
    recommendation: str = ""

    def __post_init__(self):
        if not self.recommendation:
            self.recommendation = (
                "per_kernel"
                if self.per_kernel.energy_joules
                < self.application.energy_joules
                else "application")

    @property
    def energy_ratio(self):
        """per-kernel energy / application energy (<1 favours per-kernel)."""
        return (self.per_kernel.energy_joules
                / self.application.energy_joules)

    def summary(self):
        lines = ["reconfiguration plan ({} switches):".format(self.switches)]
        for cost in (self.application, self.per_kernel):
            lines.append(
                "  {:<12} exec {:.6f}s + reconfig {:.6f}s = {:.6f}s, "
                "{:.6f} J".format(cost.label, cost.exec_seconds,
                                  cost.reconfig_seconds, cost.total_seconds,
                                  cost.energy_joules))
        lines.append("  recommendation: {} trimming".format(
            self.recommendation.replace("_", "-")))
        return "\n".join(lines)


class ReconfigurationPlanner:
    """Prices application-level vs per-kernel trimming for a trace."""

    def __init__(self, tool=None, reconfig_cycles=PARTIAL_RECONFIG_CYCLES,
                 reconfig_power_w=RECONFIG_POWER_W):
        self.tool = tool or TrimmingTool()
        self.reconfig_cycles = reconfig_cycles
        self.reconfig_power_w = reconfig_power_w

    # ------------------------------------------------------------------

    def plan(self, trace: Sequence[LaunchEvent],
             programs_by_kernel: Dict[str, object]) -> ReconfigPlan:
        """Price both strategies over ``trace``.

        ``programs_by_kernel`` maps each kernel name in the trace to its
        assembled :class:`~repro.asm.program.Program`.
        """
        if not trace:
            raise TrimError("empty launch trace")
        missing = {e.kernel for e in trace} - set(programs_by_kernel)
        if missing:
            raise TrimError(
                "trace mentions kernels without programs: {}".format(
                    sorted(missing)))

        union = self.tool.trim(list(programs_by_kernel.values()))
        per_kernel = {
            name: self.tool.trim(program)
            for name, program in programs_by_kernel.items()
        }

        union_power = union.report.power.total
        app_exec = sum(e.cu_cycles for e in trace) / CU_CLOCK_HZ
        app = StrategyCost(
            label="application",
            exec_seconds=app_exec,
            reconfig_seconds=0.0,
            energy_joules=union_power * app_exec,
        )

        switches = sum(1 for a, b in zip(trace, trace[1:])
                       if a.kernel != b.kernel)
        reconfig_seconds = switches * self.reconfig_cycles / CU_CLOCK_HZ
        exec_energy = sum(
            per_kernel[e.kernel].report.power.total
            * (e.cu_cycles / CU_CLOCK_HZ)
            for e in trace)
        pk = StrategyCost(
            label="per_kernel",
            exec_seconds=app_exec,  # trimming never changes cycles
            reconfig_seconds=reconfig_seconds,
            energy_joules=exec_energy
            + self.reconfig_power_w * reconfig_seconds,
        )
        return ReconfigPlan(application=app, per_kernel=pk,
                            switches=switches)

    def plan_from_device(self, device, programs_by_kernel):
        """Build the trace from a device's recorded launches."""
        trace = [LaunchEvent(l.kernel, l.cu_cycles)
                 for l in device.gpu.launches]
        return self.plan(trace, programs_by_kernel)

    # ------------------------------------------------------------------

    def breakeven_cycles(self, trace, programs_by_kernel):
        """Kernel-runtime scale at which per-kernel trimming breaks even.

        Returns the multiplier ``m`` such that scaling every launch's
        runtime by ``m`` makes the two strategies cost equal energy
        (None if per-kernel never wins -- e.g. a single-kernel trace
        where it always wins at any scale, or identical power).
        """
        base = self.plan(trace, programs_by_kernel)
        exec_saving = (base.application.energy_joules
                       - (base.per_kernel.energy_joules
                          - self.reconfig_power_w
                          * base.per_kernel.reconfig_seconds))
        if exec_saving <= 0:
            return None
        overhead = (self.reconfig_power_w
                    * base.per_kernel.reconfig_seconds)
        return overhead / exec_saving
