"""Instruction-mix histograms: the Figure 4 taxonomy.

The paper characterises 25 AMD APP SDK benchmarks by classifying every
executed instruction into scalar/vector x INT/SP-FP/DP-FP x the ten
computational categories of Section 3.1, grouped into seven lettered
bars (A: binary/logic/shift, B/C/D: arithmetic by numeric type,
E: conversions, F: control, G: memory).

:class:`InstructionMix` accepts either static occurrence counts (from
a binary) or dynamic execution counts (from the simulator's per-name
statistics) and renders both the full matrix and the Figure 4 bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.categories import (
    ARITHMETIC_CATEGORIES,
    DataType,
    FunctionalUnit,
    OpCategory,
)
from ..isa.tables import ISA

#: Figure 4's lettered groups, with the paper's legend text.
GROUP_TITLES = {
    "A": "Binary, logic and shift operations",
    "B": "Integer (INT) arithmetic",
    "C": "Single-precision (SP) floating-point (FP) arithmetic",
    "D": "Double-precision (DP) floating-point (FP) arithmetic",
    "E": "Numerical conversion",
    "F": "Control operations (excluding comparison)",
    "G": "Memory operations",
}

_AB_CATEGORIES = (OpCategory.MOV, OpCategory.LOGIC, OpCategory.SHIFT,
                  OpCategory.BITWISE)


def classify(spec):
    """Map an instruction spec to its Figure 4 group letter."""
    if spec.category is OpCategory.MEMORY:
        return "G"
    if spec.category is OpCategory.CONTROL:
        return "F"
    if spec.category is OpCategory.CONVERT:
        return "E"
    if spec.category in _AB_CATEGORIES:
        return "A"
    # Arithmetic: split by numeric type.
    if spec.dtype is DataType.FP64:
        return "D"
    if spec.dtype is DataType.FP32:
        return "C"
    return "B"


@dataclass
class InstructionMix:
    """Counts per (group, category, scalar/vector, dtype)."""

    benchmark: str
    counts: Dict[tuple, int] = field(default_factory=dict)
    total: int = 0

    @staticmethod
    def from_counts(benchmark, per_name_counts, registry=ISA):
        """Build a mix from ``{mnemonic: count}`` statistics."""
        mix = InstructionMix(benchmark=benchmark)
        for name, count in per_name_counts.items():
            spec = registry.by_name(name)
            is_vector = spec.unit.is_vector or (
                spec.unit is FunctionalUnit.LSU and spec.fmt.value in
                ("mubuf", "mtbuf", "ds"))
            key = (classify(spec), spec.category, is_vector, spec.dtype)
            mix.counts[key] = mix.counts.get(key, 0) + count
            mix.total += count
        return mix

    @staticmethod
    def from_program(program, registry=ISA):
        """Static mix: one count per instruction occurrence in a binary."""
        per_name = {}
        for name in program.instruction_names():
            per_name[name] = per_name.get(name, 0) + 1
        return InstructionMix.from_counts(program.name, per_name, registry)

    # ------------------------------------------------------------------

    def fraction(self, group=None, category=None, vector=None, dtype=None):
        """Fraction of instructions matching the given filters."""
        if self.total == 0:
            return 0.0
        matched = 0
        for (g, cat, vec, dt), count in self.counts.items():
            if group is not None and g != group:
                continue
            if category is not None and cat is not category:
                continue
            if vector is not None and vec != vector:
                continue
            if dtype is not None and dt is not dtype:
                continue
            matched += count
        return matched / self.total

    def group_fractions(self):
        """The seven Figure 4 bars, as fractions of executed instructions."""
        return {g: self.fraction(group=g) for g in "ABCDEFG"}

    def category_fractions(self):
        return {cat: self.fraction(category=cat) for cat in OpCategory}

    def arithmetic_profile(self):
        """Arithmetic breakdown by (dtype, category) -- the B/C/D detail."""
        out = {}
        for dtype in (DataType.INT, DataType.FP32, DataType.FP64):
            for cat in ARITHMETIC_CATEGORIES:
                frac = self.fraction(category=cat, dtype=dtype)
                if frac:
                    out[(dtype, cat)] = frac
        return out

    @property
    def uses_scalar_only(self):
        return self.fraction(vector=True) == 0.0

    @property
    def uses_vector(self):
        return self.fraction(vector=True) > 0.0

    @property
    def uses_double(self):
        return self.fraction(dtype=DataType.FP64) > 0.0

    @property
    def uses_float(self):
        return self.fraction(dtype=DataType.FP32) > 0.0

    def render(self, width=40):
        """ASCII rendering of the seven bars (one benchmark column)."""
        lines = ["{}  ({} instructions)".format(self.benchmark, self.total)]
        for group, frac in self.group_fractions().items():
            bar = "#" * int(round(frac * width))
            lines.append("  {} |{:<{w}}| {:5.1%}  {}".format(
                group, bar, frac, GROUP_TITLES[group], w=width))
        return "\n".join(lines)
