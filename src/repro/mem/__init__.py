"""Memory substrate: DDR3 image, prefetch buffer, access timing."""

from .global_memory import GlobalMemory
from .params import DCD_PM_TIMING, DCD_TIMING, ORIGINAL_TIMING, MemoryTimingParams
from .prefetch import BRAM_BYTES, PrefetchBuffer
from .system import MemorySystem

__all__ = [
    "GlobalMemory", "MemorySystem", "PrefetchBuffer", "BRAM_BYTES",
    "MemoryTimingParams", "ORIGINAL_TIMING", "DCD_TIMING", "DCD_PM_TIMING",
]
