"""Functional model of the board's DDR3 global memory.

A flat little-endian byte-addressable store backed by a NumPy array.
The MicroBlaze host, the ultra-threaded dispatcher and the compute
units all read and write through this object; timing is handled
separately by :class:`repro.mem.system.MemorySystem` so that the same
functional state serves every architecture generation.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

#: Per-lane byte offsets used by the vectorised unaligned dword paths.
_BYTE_OFFSETS = np.arange(4, dtype=np.int64)


def dedup_keep_last(indices, values):
    """Resolve duplicate store indices to last-occurrence-wins.

    NumPy fancy assignment leaves the result for duplicated indices
    unspecified ("the last value wins" is an implementation detail the
    docs explicitly refuse to guarantee); the architectural contract --
    the reference per-lane loop in :mod:`repro.cu.lsu` -- is
    last-active-lane-wins.  Returns ``(indices, values)`` safe to fancy
    assign: when duplicates exist, each index is kept once with the
    value of its highest-position occurrence.
    """
    if indices.size < 2 or bool((indices[1:] > indices[:-1]).all()):
        # Strictly increasing (the overwhelmingly common base+stride
        # pattern) cannot contain duplicates -- skip the unique() pass.
        return indices, values
    rev = indices[::-1]
    unique, first = np.unique(rev, return_index=True)
    if unique.size == rev.size:
        return indices, values
    return unique, values[::-1][first]


class GlobalMemory:
    """Byte-addressable DDR3 memory image.

    Word accessors operate on aligned 32-bit little-endian dwords, the
    granularity of every MIAOW2.0 memory instruction; byte accessors
    back the ``buffer_load_ubyte``-family used by the INT8 kernels.
    """

    def __init__(self, size=1 << 24):
        self.size = int(size)
        self._bytes = np.zeros(self.size, dtype=np.uint8)
        #: High-water mark of written bytes: everything at or above
        #: this address is still power-on zero.  Lets :meth:`reset`
        #: clear only the written prefix instead of the whole store
        #: (a visible cost on every warm-board lease).
        self.dirty_hi = 0

    # -- bounds -------------------------------------------------------------

    def _check(self, addr, nbytes):
        if addr < 0 or addr + nbytes > self.size:
            raise SimulationError(
                "global memory access out of range: 0x{:x}+{} (size 0x{:x})".format(
                    addr, nbytes, self.size
                )
            )

    # -- scalar accessors ----------------------------------------------------

    def read_u32(self, addr):
        self._check(addr, 4)
        return int(self._bytes[addr:addr + 4].view(np.uint32)[0])

    def write_u32(self, addr, value):
        self._check(addr, 4)
        self._bytes[addr:addr + 4].view(np.uint32)[0] = np.uint32(value & 0xFFFFFFFF)
        if addr + 4 > self.dirty_hi:
            self.dirty_hi = addr + 4

    def read_u8(self, addr):
        self._check(addr, 1)
        return int(self._bytes[addr])

    def write_u8(self, addr, value):
        self._check(addr, 1)
        self._bytes[addr] = np.uint8(value & 0xFF)
        if addr + 1 > self.dirty_hi:
            self.dirty_hi = addr + 1

    # -- vectorised accessors (one wavefront's lanes at once) ----------------

    def _check_lanes(self, addrs, active, nbytes):
        if active.size == 0:
            return None
        lo = int(addrs[active].min())
        hi = int(addrs[active].max())
        if lo < 0 or hi + nbytes > self.size:
            raise SimulationError(
                "global memory access out of range: 0x{:x}..0x{:x} (size 0x{:x})".format(
                    lo, hi + nbytes, self.size
                )
            )
        return hi + nbytes

    def gather_u32(self, addrs, mask):
        """Read a uint32 per active lane; inactive lanes return 0.

        Dword-aligned accesses (the only kind our kernels emit) take a
        vectorised fast path through a uint32 view of the store.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.zeros(len(addrs), dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return out
        self._check_lanes(addrs, active, 4)
        sel = addrs[active]
        if not (sel & 3).any():
            out[active] = self._bytes.view(np.uint32)[sel >> 2]
            return out
        # Unaligned: gather each lane's four bytes and reassemble the
        # little-endian dwords in one shot (bit-identical to per-lane
        # read_u32 -- both go through the store's native byte order).
        lane_bytes = self._bytes[sel[:, None] + _BYTE_OFFSETS]
        out[active] = np.ascontiguousarray(lane_bytes).view(np.uint32).ravel()
        return out

    def scatter_u32(self, addrs, values, mask):
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return
        end = self._check_lanes(addrs, active, 4)
        if end > self.dirty_hi:
            self.dirty_hi = end
        sel = addrs[active]
        if not (sel & 3).any():
            idx, vals = dedup_keep_last(sel >> 2, values[active])
            self._bytes.view(np.uint32)[idx] = vals
            return
        # Unaligned: flatten to byte stores in lane-then-byte order so
        # overlapping dword ranges resolve exactly like the sequential
        # per-lane write_u32 loop, then dedup-keep-last per byte.
        byte_idx = (sel[:, None] + _BYTE_OFFSETS).ravel()
        byte_vals = np.ascontiguousarray(values[active])[:, None] \
            .view(np.uint8).ravel()
        idx, vals = dedup_keep_last(byte_idx, byte_vals)
        self._bytes[idx] = vals

    def gather_u8(self, addrs, mask, signed=False):
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.zeros(len(addrs), dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return out
        self._check_lanes(addrs, active, 1)
        raw = self._bytes[addrs[active]]
        if signed:
            out[active] = raw.astype(np.int8).astype(np.int32).astype(np.uint32)
        else:
            out[active] = raw.astype(np.uint32)
        return out

    def scatter_u8(self, addrs, values, mask):
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return
        end = self._check_lanes(addrs, active, 1)
        if end > self.dirty_hi:
            self.dirty_hi = end
        idx, vals = dedup_keep_last(addrs[active],
                                    (values[active] & 0xFF).astype(np.uint8))
        self._bytes[idx] = vals

    # -- bulk transfer (host / dispatcher side) -------------------------------

    def write_block(self, addr, data):
        """Copy a bytes-like or NumPy array into memory at ``addr``."""
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        self._check(addr, raw.size)
        self._bytes[addr:addr + raw.size] = raw
        if addr + raw.size > self.dirty_hi:
            self.dirty_hi = addr + raw.size

    def read_block(self, addr, nbytes, dtype=np.uint8):
        self._check(addr, nbytes)
        out = self._bytes[addr:addr + nbytes].copy()
        return out.view(dtype)

    def fill(self, addr, nbytes, byte=0):
        self._check(addr, nbytes)
        self._bytes[addr:addr + nbytes] = np.uint8(byte)
        if byte and addr + nbytes > self.dirty_hi:
            # Zero fills never extend the dirty prefix: bytes above it
            # are zero already.
            self.dirty_hi = addr + nbytes

    def reset(self):
        """Return every byte to power-on zero.

        Only the written prefix (``dirty_hi``) is cleared -- bytes
        above it were never touched -- which makes warm-board reuse
        cost proportional to the previous job's footprint rather than
        the full store size.
        """
        if self.dirty_hi:
            self._bytes[:self.dirty_hi] = 0
            self.dirty_hi = 0

    def snapshot(self):
        """Copy of the full memory image (see :meth:`restore`)."""
        return self._bytes.copy()

    def restore(self, image):
        """Restore an image captured by :meth:`snapshot`."""
        np.copyto(self._bytes, image)
        # The image may contain nonzero bytes anywhere; be conservative.
        self.dirty_hi = self.size
