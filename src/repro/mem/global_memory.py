"""Functional model of the board's DDR3 global memory.

A flat little-endian byte-addressable store backed by a NumPy array.
The MicroBlaze host, the ultra-threaded dispatcher and the compute
units all read and write through this object; timing is handled
separately by :class:`repro.mem.system.MemorySystem` so that the same
functional state serves every architecture generation.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


class GlobalMemory:
    """Byte-addressable DDR3 memory image.

    Word accessors operate on aligned 32-bit little-endian dwords, the
    granularity of every MIAOW2.0 memory instruction; byte accessors
    back the ``buffer_load_ubyte``-family used by the INT8 kernels.
    """

    def __init__(self, size=1 << 24):
        self.size = int(size)
        self._bytes = np.zeros(self.size, dtype=np.uint8)

    # -- bounds -------------------------------------------------------------

    def _check(self, addr, nbytes):
        if addr < 0 or addr + nbytes > self.size:
            raise SimulationError(
                "global memory access out of range: 0x{:x}+{} (size 0x{:x})".format(
                    addr, nbytes, self.size
                )
            )

    # -- scalar accessors ----------------------------------------------------

    def read_u32(self, addr):
        self._check(addr, 4)
        return int(self._bytes[addr:addr + 4].view(np.uint32)[0])

    def write_u32(self, addr, value):
        self._check(addr, 4)
        self._bytes[addr:addr + 4].view(np.uint32)[0] = np.uint32(value & 0xFFFFFFFF)

    def read_u8(self, addr):
        self._check(addr, 1)
        return int(self._bytes[addr])

    def write_u8(self, addr, value):
        self._check(addr, 1)
        self._bytes[addr] = np.uint8(value & 0xFF)

    # -- vectorised accessors (one wavefront's lanes at once) ----------------

    def _check_lanes(self, addrs, active, nbytes):
        if active.size == 0:
            return
        lo = int(addrs[active].min())
        hi = int(addrs[active].max())
        if lo < 0 or hi + nbytes > self.size:
            raise SimulationError(
                "global memory access out of range: 0x{:x}..0x{:x} (size 0x{:x})".format(
                    lo, hi + nbytes, self.size
                )
            )

    def gather_u32(self, addrs, mask):
        """Read a uint32 per active lane; inactive lanes return 0.

        Dword-aligned accesses (the only kind our kernels emit) take a
        vectorised fast path through a uint32 view of the store.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.zeros(len(addrs), dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return out
        self._check_lanes(addrs, active, 4)
        sel = addrs[active]
        if not (sel & 3).any():
            out[active] = self._bytes.view(np.uint32)[sel >> 2]
            return out
        for lane in active:
            out[lane] = self.read_u32(int(addrs[lane]))
        return out

    def scatter_u32(self, addrs, values, mask):
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return
        self._check_lanes(addrs, active, 4)
        sel = addrs[active]
        if not (sel & 3).any():
            self._bytes.view(np.uint32)[sel >> 2] = values[active]
            return
        for lane in active:
            self.write_u32(int(addrs[lane]), int(values[lane]))

    def gather_u8(self, addrs, mask, signed=False):
        addrs = np.asarray(addrs, dtype=np.int64)
        out = np.zeros(len(addrs), dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return out
        self._check_lanes(addrs, active, 1)
        raw = self._bytes[addrs[active]]
        if signed:
            out[active] = raw.astype(np.int8).astype(np.int32).astype(np.uint32)
        else:
            out[active] = raw.astype(np.uint32)
        return out

    def scatter_u8(self, addrs, values, mask):
        addrs = np.asarray(addrs, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint32)
        active = np.flatnonzero(mask)
        if active.size == 0:
            return
        self._check_lanes(addrs, active, 1)
        self._bytes[addrs[active]] = (values[active] & 0xFF).astype(np.uint8)

    # -- bulk transfer (host / dispatcher side) -------------------------------

    def write_block(self, addr, data):
        """Copy a bytes-like or NumPy array into memory at ``addr``."""
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        self._check(addr, raw.size)
        self._bytes[addr:addr + raw.size] = raw

    def read_block(self, addr, nbytes, dtype=np.uint8):
        self._check(addr, nbytes)
        out = self._bytes[addr:addr + nbytes].copy()
        return out.view(dtype)

    def fill(self, addr, nbytes, byte=0):
        self._check(addr, nbytes)
        self._bytes[addr:addr + nbytes] = np.uint8(byte)

    def snapshot(self):
        """Copy of the full memory image (see :meth:`restore`)."""
        return self._bytes.copy()

    def restore(self, image):
        """Restore an image captured by :meth:`snapshot`."""
        np.copyto(self._bytes, image)
