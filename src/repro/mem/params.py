"""Timing parameters of the MIAOW2.0 memory hierarchy.

The three architecture generations of the paper differ almost entirely
in how a compute-unit memory request is serviced:

* **Original MIAOW** -- a single 50 MHz clock; every global access is
  relayed by the MicroBlaze (it receives the request over AXI, issues
  the DDR3 transaction through the MIG and writes the data back into
  the CU's memory-mapped registers).  The relay is firmware, so it is
  both slow and strictly serialised: Section 2.2.4 calls this out as
  "significantly increases the latency for memory accesses".
* **DCD** -- the MicroBlaze/MIG domain moves to 200 MHz, so the same
  relay completes in a quarter of the CU-clock cycles.
* **DCD+PM** -- a BRAM prefetch buffer sits next to the CU; hits are
  serviced "without direct communication with a programmable
  processor/controller" (Section 2.1.4), i.e. at BRAM latency and
  pipelined.

All values are expressed in **CU cycles** (50 MHz, 20 ns).  They are
calibration constants: tuned so that the reproduced Figure 7 speedup
bands (DCD >= 1.17x, DCD+PM between ~4.3x and ~96x depending on memory
intensity) match the paper; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryTimingParams:
    """Latency/throughput constants for one architecture configuration.

    The MicroBlaze relay latency splits into two parts:

    * an **AXI handshake** portion clocked with the compute unit -- the
      CU-side slave interface, the interrupt/polling turnaround and the
      domain-crossing synchronisers stay at 50 MHz no matter how fast
      the MicroBlaze runs; and
    * a **service** portion in the MicroBlaze/MIG domain -- the firmware
      loop plus the DDR3 transaction, which the 200 MHz domain of the
      DCD design speeds up by the clock ratio.

    This split is why the paper measures only ~1.17x from the dual
    clock domain alone but >4x-96x once the prefetch memory bypasses
    the relay entirely (Section 4.1.2).
    """

    #: CU-domain cycles of the relay's AXI/handshake portion.
    axi_fixed_cycles: int = 645
    #: MicroBlaze-domain cycles of the relay's service portion.
    mb_service_cycles: int = 155
    #: Clock ratio between the dispatcher/memory domain and the CU
    #: domain (1 for the original single-clock design, 4 for DCD's
    #: 200 MHz / 50 MHz split).
    clock_ratio: int = 1
    #: Whether the prefetch memory exists and services covered ranges.
    prefetch_enabled: bool = False
    #: CU cycles for a prefetch-buffer (BRAM) hit.
    prefetch_hit_cycles: int = 4
    #: Initiation interval of the prefetch port (pipelined, one new
    #: request per interval); the MicroBlaze relay is not pipelined.
    prefetch_issue_interval: int = 1
    #: CU cycles for an LDS access (banked BRAM inside the CU).
    lds_cycles: int = 2

    @property
    def relay_cycles(self):
        """Effective MicroBlaze relay latency in CU cycles."""
        return self.axi_fixed_cycles + self.mb_service_cycles / self.clock_ratio


#: Parameter presets for the paper's three fixed-function generations.
ORIGINAL_TIMING = MemoryTimingParams(clock_ratio=1, prefetch_enabled=False)
DCD_TIMING = MemoryTimingParams(clock_ratio=4, prefetch_enabled=False)
DCD_PM_TIMING = MemoryTimingParams(clock_ratio=4, prefetch_enabled=True)
