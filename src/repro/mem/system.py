"""Memory system: functional state + per-architecture access timing.

One :class:`MemorySystem` instance is shared by every compute unit of a
configuration.  It owns:

* the :class:`GlobalMemory` image (functional data),
* the shared MicroBlaze relay **channel** -- one request at a time, at
  a latency set by the clock-domain configuration.  This is the
  serialisation bottleneck the dual-clock domain and prefetch memory
  attack, and it is what keeps multi-CU scaling sub-linear for
  memory-hungry kernels in Figure 7A,
* one :class:`PrefetchBuffer` per compute unit (BRAM is instantiated
  "near the CU", Section 2.1.4), each with its own pipelined port.

Timing entry points return the **completion time** of a request given
the requested start time; functional data movement happens separately
through the ``global_mem`` accessors so the functional result never
depends on the architecture generation.
"""

from __future__ import annotations

import threading

from ..obs.events import MemAccess
from .global_memory import GlobalMemory
from .params import MemoryTimingParams
from .prefetch import PrefetchBuffer


class _Channel:
    """A resource that admits one request per ``interval`` cycles."""

    def __init__(self, interval_pipelined=None):
        self.busy_until = 0.0
        self.interval = interval_pipelined
        self.requests = 0

    def reset(self):
        self.busy_until = 0.0
        self.requests = 0

    def issue(self, now, latency):
        """Issue a request at >= ``now``; returns its completion time.

        Pipelined channels (``interval`` set) re-admit after the
        initiation interval; unpipelined ones only after completion.
        """
        start = max(now, self.busy_until)
        done = start + latency
        self.busy_until = (start + self.interval) if self.interval else done
        self.requests += 1
        return done


class MemorySystem:
    """Shared memory hierarchy for one simulated configuration."""

    def __init__(self, params=None, num_cus=1, global_size=1 << 24,
                 prefetch_brams=928):
        self.params = params or MemoryTimingParams()
        self.global_mem = GlobalMemory(global_size)
        self.relay = _Channel()  # the MicroBlaze/MIG path: serialised
        per_cu_brams = max(1, prefetch_brams // max(1, num_cus))
        self.prefetch = [PrefetchBuffer(per_cu_brams) for _ in range(num_cus)]
        self._prefetch_ports = [
            _Channel(self.params.prefetch_issue_interval) for _ in range(num_cus)
        ]
        # prefetch_hits + prefetch_misses == every global transaction:
        # a "miss" is any access the prefetch memory could not serve
        # (including all of them on configurations without one), so a
        # hit *rate* is always computable.  relay_accesses counts the
        # MicroBlaze-relay path and equals prefetch_misses today, but
        # stays separate: the relay is a contended channel and future
        # backends may miss to something other than the relay.
        self.stats = {"relay_accesses": 0, "prefetch_hits": 0,
                      "prefetch_misses": 0, "lds_accesses": 0}
        #: Set by the parallel launch engine while per-CU executor
        #: threads are running: the shared counters then increment
        #: under a lock so no update is lost.
        self.concurrent = False
        self._stats_lock = threading.Lock()
        #: Observation slot (see repro.obs): ``None`` or the board's hub.
        self.obs = None

    def _note(self, *keys):
        stats = self.stats
        if self.concurrent:
            with self._stats_lock:
                for key in keys:
                    stats[key] += 1
        else:
            for key in keys:
                stats[key] += 1

    # -- preload (MicroBlaze command, Section 2.1.4) -------------------------

    def preload(self, cu_index, start, nbytes):
        """Preload a range into one CU's prefetch buffer, if present.

        No-op (returns False) when the configuration has no prefetch
        memory; the host templates call this unconditionally so kernels
        are identical across generations.
        """
        if not self.params.prefetch_enabled:
            return False
        return self.prefetch[cu_index].preload(start, nbytes)

    def preload_all(self, start, nbytes):
        """Preload the same range into every CU's buffer."""
        return all(self.preload(i, start, nbytes) for i in range(len(self.prefetch)))

    # -- timing ---------------------------------------------------------------

    def access_time(self, cu_index, now, addrs, mask, span=None):
        """Completion time of a vector global access starting at ``now``.

        ``span`` is an optional precomputed ``(active, lo, hi)`` lane
        footprint: the coverage test then reduces to one range check,
        falling back to the full per-lane scan only for discontiguous
        residency.  Timing is identical with or without it.
        """
        if span is not None:
            active, lo, hi = span
            covered = self.params.prefetch_enabled and (
                active == 0
                or self.prefetch[cu_index].covers_range(lo, hi)
                or self.prefetch[cu_index].covers_all(addrs, mask))
        else:
            covered = self.params.prefetch_enabled and \
                self.prefetch[cu_index].covers_all(addrs, mask)
        if covered:
            self._note("prefetch_hits")
            done = self._prefetch_ports[cu_index].issue(
                now, self.params.prefetch_hit_cycles)
            hit = True
        else:
            self._note("prefetch_misses", "relay_accesses")
            done = self.relay.issue(now, self.params.relay_cycles)
            hit = False
        if self.obs is not None:
            self.obs.emit_mem_access(MemAccess(
                cycle=now, cu_index=cu_index, space="global",
                kind="vector", hit=hit, completed=done))
        return done

    def scalar_access_time(self, cu_index, now, addr):
        """Completion time of a scalar (SMRD) read starting at ``now``."""
        if self.params.prefetch_enabled and self.prefetch[cu_index].covers(addr):
            self._note("prefetch_hits")
            done = self._prefetch_ports[cu_index].issue(
                now, self.params.prefetch_hit_cycles)
            hit = True
        else:
            self._note("prefetch_misses", "relay_accesses")
            done = self.relay.issue(now, self.params.relay_cycles)
            hit = False
        if self.obs is not None:
            self.obs.emit_mem_access(MemAccess(
                cycle=now, cu_index=cu_index, space="global",
                kind="scalar", hit=hit, completed=done))
        return done

    def lds_access_time(self, now, cu_index=0):
        """Completion time of an LDS access (always in-CU BRAM)."""
        self._note("lds_accesses")
        done = now + self.params.lds_cycles
        if self.obs is not None:
            self.obs.emit_mem_access(MemAccess(
                cycle=now, cu_index=cu_index, space="lds",
                kind="lds", hit=None, completed=done))
        return done

    def rebase_port(self, cu_index):
        """Zero one CU port's occupancy, keeping its request counter.

        Companion of ``ComputeUnit.rebase_occupancy`` for the parallel
        launch engine: the port's ``busy_until`` is an absolute time
        that must not leak between workgroups re-timed from local
        zero.  Exact because the port's initiation interval never
        exceeds the hit latency, so its occupancy ends at or before
        the workgroup's own end time.
        """
        self._prefetch_ports[cu_index].busy_until = 0.0

    def reset_timing(self):
        """Clear channel occupancy and counters between kernel launches."""
        self.relay.reset()
        for port in self._prefetch_ports:
            port.reset()
        for key in self.stats:
            self.stats[key] = 0
