"""The in-FPGA prefetch memory buffer (Section 2.1.4).

A set of BRAM blocks instantiated next to the compute unit.  At the
start of execution, MicroBlaze commands pre-load it with application
data; during execution, any access falling inside a covered address
range is serviced at BRAM latency instead of going through the
MicroBlaze relay.

Functionally, the buffer is *coherent by construction* in this model:
it fronts the same :class:`GlobalMemory` image (the preload copies
data, and stores write through), so only timing differs between a hit
and a miss.  The paper's host templates handle exactly this preload
and write-back choreography (Section 3.3).

Capacity matters: the buffer is built from the FPGA's spare BRAM (the
Figure 6 baseline devotes 928 of 1151 RAMB36 blocks to it), so
:meth:`preload` refuses ranges that exceed it -- the runtime then keeps
the overflow in global memory, which is how large-input sweeps in
Figure 7 naturally shift from compute-bound to memory-bound.
"""

from __future__ import annotations

from ..errors import SimulationError

#: Usable bytes per RAMB36 block (36 Kb with parity -> 4 KiB of data).
BRAM_BYTES = 4096


class PrefetchBuffer:
    """Address-range tracker for the BRAM prefetch memory."""

    def __init__(self, bram_blocks=928):
        self.bram_blocks = int(bram_blocks)
        self.capacity = self.bram_blocks * BRAM_BYTES
        self._ranges = []  # list of (start, end) half-open byte ranges
        self._used = 0

    @property
    def used_bytes(self):
        return self._used

    @property
    def free_bytes(self):
        return self.capacity - self._used

    def clear(self):
        self._ranges = []
        self._used = 0

    def preload(self, start, nbytes):
        """Mark ``[start, start+nbytes)`` as resident in the buffer.

        Returns True when the range fits (and records it), False when
        the buffer is full -- callers fall back to global memory, they
        do not partially load.
        """
        if nbytes < 0:
            raise SimulationError("negative prefetch range")
        if nbytes == 0:
            return True
        if nbytes > self.free_bytes:
            return False
        self._ranges.append((start, start + nbytes))
        self._used += nbytes
        return True

    def covers(self, addr):
        """Whether a single address hits the buffer."""
        for start, end in self._ranges:
            if start <= addr < end:
                return True
        return False

    def covers_range(self, lo, hi):
        """Whether one resident range covers ``[lo, hi]`` entirely.

        The single-range special case of :meth:`covers_all`, for
        callers that already know the access footprint; discontiguous
        coverage still needs the per-lane fallback there.
        """
        for start, end in self._ranges:
            if start <= lo and hi < end:
                return True
        return False

    def covers_all(self, addrs, mask):
        """Whether every active lane of a vector access hits the buffer.

        MIAOW2.0 services a wavefront's memory instruction as one
        transaction, so a single miss sends the whole transaction down
        the MicroBlaze path.
        """
        import numpy as np

        active = np.flatnonzero(mask)
        if active.size == 0:
            return True
        lanes = np.asarray(addrs, dtype=np.int64)[active]
        lo, hi = int(lanes.min()), int(lanes.max())
        for start, end in self._ranges:
            if start <= lo and hi < end:
                return True
        # Ranges may be discontiguous; fall back to the per-lane check.
        return all(self.covers(int(a)) for a in lanes)
