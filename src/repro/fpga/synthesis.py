"""'Synthesis': turn an architecture configuration into a utilisation
and power report, and check device fit.

This is the model stand-in for the Vivado implementation step of the
SCRATCH flow (Figure 3, step iii).  It composes the area model over the
configuration's compute units (distributing the prefetch BRAM across
them, as the paper's multi-CU designs do -- Section 4.1.1) and runs the
power model on the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.config import ArchConfig
from ..errors import AreaBudgetError, ResourceError
from ..obs.serialize import SerializableMixin
from .area_model import AreaModel
from .calibration import PREFETCH_BASELINE_BRAMS
from .power_model import PowerEstimate, PowerModel
from .resources import XC7VX690T, FpgaDevice, ResourceVector


@dataclass
class SynthesisReport(SerializableMixin):
    """Utilisation + power of one configuration on one device."""

    config: ArchConfig
    device: FpgaDevice
    soc: ResourceVector
    per_cu: ResourceVector
    cu_components: Dict[str, ResourceVector]
    prefetch_brams: int
    power: PowerEstimate

    @property
    def total(self):
        return self.soc + self.per_cu.scale(self.config.num_cus)

    @property
    def cu_logic_total(self):
        """All-CU logic excluding the prefetch storage BRAM."""
        logic = self.per_cu - ResourceVector(bram=self.prefetch_brams)
        return logic.scale(self.config.num_cus)

    def utilisation(self):
        return self.total.fraction_of(self.device.capacity)

    def fits(self):
        return self.total.fits_in(self.device.usable)

    def check_budget(self, budget, what=None, margin=1.0):
        """Enforce a per-design area budget (re-investment accounting).

        ``budget`` is a :class:`ResourceVector`; a design whose total
        area exceeds ``budget x margin`` in any resource class raises
        :class:`~repro.errors.AreaBudgetError` naming ``what``.  The
        design-space explorer prices every re-investment point against
        the device's usable area this way: extra CUs/VALUs are only
        legal if trimming freed enough resources to pay for them.
        """
        needed = self.total
        if not needed.fits_in(budget, margin):
            raise AreaBudgetError(
                what or self.config.describe(),
                needed.rounded(),
                budget.scale(margin).rounded())
        return self

    def savings_vs(self, other):
        """Per-class fractional resource savings relative to ``other``.

        This is Figure 6's "Resource Savings (percentage over
        Baseline)" when ``other`` is the untrimmed baseline report.
        """
        mine, theirs = self.total, other.total

        def save(a, b):
            return (b - a) / b if b else 0.0

        return {
            "ff": save(mine.ff, theirs.ff),
            "lut": save(mine.lut, theirs.lut),
            "dsp": save(mine.dsp, theirs.dsp),
            "bram": save(mine.bram, theirs.bram),
        }

    def summary(self):
        lines = ["{}".format(self.config.describe())]
        lines.append("  total: {}".format(self.total.rounded()))
        for name, frac in sorted(self.utilisation().items()):
            lines.append("  {:>5}: {:5.1%}".format(name, frac))
        lines.append("  power: {}".format(self.power))
        return "\n".join(lines)

    def to_dict(self):
        """Utilisation + power under the repo-wide serialization
        convention (:mod:`repro.obs.serialize`).

        Carries both the derived summary (what the CLI prints) and the
        full constituent state, so :meth:`from_dict` rebuilds an equal
        report -- the lossless round trip the DSE result store relies
        on.
        """
        total = self.total.rounded()
        return {
            "config": self.config.describe(),
            "device": self.device.name,
            "total": {"ff": total.ff, "lut": total.lut,
                      "dsp": total.dsp, "bram": total.bram},
            "utilisation": dict(self.utilisation()),
            "fits_device": self.fits(),
            "power_w": {
                "static": self.power.static,
                "dynamic": self.power.dynamic,
                "total": self.power.total,
            },
            "arch": self.config.to_dict(),
            "device_model": self.device.to_dict(),
            "soc": self.soc.as_dict(),
            "per_cu": self.per_cu.as_dict(),
            "cu_components": {name: vec.as_dict()
                              for name, vec in self.cu_components.items()},
            "prefetch_brams": self.prefetch_brams,
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a report from a :meth:`to_dict` payload (lossless:
        derived summary keys are ignored and recomputed)."""
        return cls(
            config=ArchConfig.from_dict(payload["arch"]),
            device=FpgaDevice.from_dict(payload["device_model"]),
            soc=ResourceVector.from_dict(payload["soc"]),
            per_cu=ResourceVector.from_dict(payload["per_cu"]),
            cu_components={
                name: ResourceVector.from_dict(vec)
                for name, vec in payload["cu_components"].items()},
            prefetch_brams=payload["prefetch_brams"],
            power=PowerEstimate.from_dict(payload["power_w"]),
        )


class Synthesizer:
    """Builds :class:`SynthesisReport` objects for configurations."""

    def __init__(self, device=XC7VX690T, area_model=None, power_model=None):
        self.device = device
        self.area = area_model or AreaModel()
        self.power = power_model or PowerModel()

    def prefetch_brams_per_cu(self, config):
        """The fixed prefetch BRAM pool split across the CUs."""
        if not config.has_prefetch:
            return 0
        return PREFETCH_BASELINE_BRAMS // config.num_cus

    def synthesize(self, config, check_fit=False):
        pm_brams = self.prefetch_brams_per_cu(config)
        breakdown = self.area.cu_area_for_config(config, prefetch_brams=pm_brams)
        per_cu = breakdown.total
        soc = self.area.soc_area(prefetch=config.has_prefetch)
        report = SynthesisReport(
            config=config,
            device=self.device,
            soc=soc,
            per_cu=per_cu,
            cu_components=dict(breakdown.components),
            prefetch_brams=pm_brams,
            power=PowerEstimate(0.0, 0.0),
        )
        report.power = self.power.estimate(
            total_area=report.total,
            cu_logic_area=report.cu_logic_total,
            clock_ratio=config.generation.clock_ratio,
            prefetch_brams=pm_brams * config.num_cus,
        )
        if check_fit and not report.fits():
            raise ResourceError(
                "{} does not fit: {} vs usable {}".format(
                    config.describe(), report.total.rounded(),
                    self.device.usable.rounded()
                )
            )
        return report
