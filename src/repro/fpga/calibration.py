"""Calibration constants of the area and power models.

The per-component resource costs below decompose the Figure 6 baseline
utilisation (one full MIAOW2.0 CU with dual clock domain + prefetch
memory on the XC7VX690T):

=========  =========  =========  =====  =====
component  FF         LUT        DSP    BRAM
=========  =========  =========  =====  =====
SoC        6,000      10,000     6      15
frontend   7,000      14,000     0      24
regfile    9,000      40,865     0      96
decode     9,500      15,500     0      0
SALU       6,500      11,500     30     0
SIMD       24,000     31,000     88     0
SIMF       48,000     62,000     22     64
LSU        11,806     26,500     52     24
PM ctrl    1,500      2,000      0      928
total      123,306    213,365    198    1,151
=========  =========  =========  =====  =====

which reproduces the paper's baseline numbers exactly (123,306 slice
FFs / 213,365 LUTs / 198 DSP48 / 1,151 BRAM).  The original/DCD design
swaps the prefetch controller for the MicroBlaze relay datapath, giving
the paper's 129,232 / 214,318 / 203 / 223.

Notes on the shape of the decomposition, all from the paper:

* the SIMF "uses almost twice the resources of an integer VALU,
  becoming the single largest unit in the design" (Section 3.2),
* execution units are >30% of resources and >50% of power, while
  Fetch/Issue are limited (<6% area / <11% power),
* DSP48s concentrate in the always-kept scalar/addressing datapaths, so
  trimming saves only ~10% of them (Section 4.1.1),
* BRAM savings come almost exclusively from dropping the SIMF's
  transcendental lookup tables (~6% -- the "6% vs 0%" pattern of the
  per-benchmark panels).
"""

from __future__ import annotations

from ..isa.categories import FunctionalUnit, OpCategory
from .resources import ResourceVector

# ---------------------------------------------------------------------------
# Component areas (one compute unit + system, full 156-instruction ISA).
# ---------------------------------------------------------------------------

SOC_AREA = ResourceVector(ff=6_000, lut=10_000, dsp=6, bram=15)

#: Extra SoC logic of the original/DCD design: the MicroBlaze-relay
#: datapath that the prefetch system replaces.
RELAY_DATAPATH_AREA = ResourceVector(ff=7_426, lut=2_953, dsp=5, bram=0)

FRONTEND_AREA = ResourceVector(ff=7_000, lut=14_000, dsp=0, bram=24)
REGFILE_AREA = ResourceVector(ff=15_500, lut=40_865, dsp=0, bram=96)
DECODE_AREA = ResourceVector(ff=7_000, lut=15_500, dsp=0, bram=0)
LDS_AREA = ResourceVector(ff=0, lut=0, dsp=0, bram=0)  # folded into LSU below

FU_AREA = {
    FunctionalUnit.SALU: ResourceVector(ff=6_500, lut=11_500, dsp=30, bram=0),
    FunctionalUnit.SIMD: ResourceVector(ff=24_000, lut=31_000, dsp=88, bram=0),
    FunctionalUnit.SIMF: ResourceVector(ff=44_000, lut=62_000, dsp=22, bram=64),
    FunctionalUnit.LSU: ResourceVector(ff=11_806, lut=26_500, dsp=52, bram=24),
}

#: Sensitivity of DSP48 usage to instruction-level trimming.  DSPs sit
#: in the shared add/multiply datapaths that *every* kernel's control
#: flow exercises, so removing decoder legs barely releases them
#: (Section 4.1.1: "only a limited reduction ... is attained"); they go
#: away only when a whole unit is removed.
DSP_TRIM_SENSITIVITY = 0.05
#: BRAMs (transcendental tables, LDS, queues) are fixed-size blocks --
#: instruction-level trimming cannot shrink them at all.
BRAM_TRIM_SENSITIVITY = 0.0

PREFETCH_CTRL_AREA = ResourceVector(ff=1_500, lut=2_000, dsp=0, bram=0)
#: BRAM blocks devoted to the prefetch buffer in the single-CU baseline.
PREFETCH_BASELINE_BRAMS = 928

#: Structural base fraction of each FU: operand routing, result buses
#: and pipeline registers that only disappear when the *whole* unit is
#: removed.  The remaining (1 - base) is apportioned to the unit's
#: instructions by category weight and trimmed per instruction.
FU_BASE_FRACTION = {
    FunctionalUnit.SALU: 0.50,
    FunctionalUnit.SIMD: 0.35,
    # A retained floating-point VALU is nearly monolithic: the shared
    # normalisation/rounding pipeline dwarfs per-operation decoders.
    FunctionalUnit.SIMF: 0.70,
    FunctionalUnit.LSU: 0.60,
    FunctionalUnit.BRANCH: 1.0,  # never trimmed
}

#: Decode structural base (format classifiers, PC/literal join logic).
DECODE_BASE_FRACTION = 0.20

#: Register-file crossbar share tied to each vector ALU's read/write
#: ports; freed when the unit is removed outright.
REGFILE_PORT_SHARE = {
    FunctionalUnit.SIMD: 0.18,
    FunctionalUnit.SIMF: 0.30,
}

#: Relative hardware cost of one instruction's decode+execute logic,
#: by computational category (divides and transcendentals are iterative
#: multi-stage units; moves are wires and a mux leg).
CATEGORY_WEIGHT = {
    OpCategory.MOV: 0.5,
    OpCategory.LOGIC: 0.7,
    OpCategory.SHIFT: 0.9,
    OpCategory.BITWISE: 1.0,
    OpCategory.CONVERT: 1.3,
    OpCategory.CONTROL: 0.6,
    OpCategory.ADD: 1.0,
    OpCategory.MUL: 2.2,
    OpCategory.DIV: 3.0,
    OpCategory.TRANS: 3.5,
    OpCategory.MEMORY: 1.0,
}

#: Narrow-datapath scaling: fraction of a 32-bit vector datapath that
#: remains at each width (Section 4.2's INT8 NIN experiment).  Control
#: does not shrink, hence the floor.
def datapath_scale(bits):
    if bits >= 32:
        return 1.0
    return 0.35 + 0.65 * (bits / 32.0)


# ---------------------------------------------------------------------------
# Power model coefficients (Watts).  Fit against Figure 6:
# original 0.39+3.20, DCD 0.39+3.27, DCD+PM 0.46+3.49; trimmed dynamic
# 2.77..3.29; see repro.fpga.power_model for the model form.
# ---------------------------------------------------------------------------

#: DDR3 interface + MIG dynamic power.
P_DDR_DYNAMIC = 0.80
#: MicroBlaze + AXI dynamic power at the CU clock (scales with ratio).
P_SOC_DYNAMIC_AT_CU_CLOCK = 0.02325
#: Prefetch BRAM dynamic power per RAMB36 block.
P_PM_BRAM_DYNAMIC = 0.22 / PREFETCH_BASELINE_BRAMS
#: Datapath switching power of the busy instruction stream (activity
#: follows the workload, not the instantiated copies -- replicated CUs
#: mostly add clock-tree load).
P_ACTIVE_DYNAMIC = 1.377
#: Clock-tree + idle-logic dynamic power of one full CU's logic.
P_CLOCK_TREE_PER_CU = 1.00

#: Static power: die leakage + per-resource leakage.
P_STATIC_BASE = 0.283
P_STATIC_PER_DESIGN = 0.09  # leakage of one full original design's logic
P_STATIC_PER_BRAM = 7.54e-5
