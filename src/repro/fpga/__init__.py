"""FPGA substrate: resource vectors, area model, power model, synthesis."""

from .area_model import AreaModel, CuAreaBreakdown
from .power_model import PowerEstimate, PowerModel
from .resources import XC7VX690T, FpgaDevice, ResourceVector
from .synthesis import SynthesisReport, Synthesizer

__all__ = [
    "AreaModel", "CuAreaBreakdown", "PowerEstimate", "PowerModel",
    "ResourceVector", "FpgaDevice", "XC7VX690T",
    "SynthesisReport", "Synthesizer",
]
