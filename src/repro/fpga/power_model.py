"""FPGA power model: static + dynamic, per architecture configuration.

Model form (fit against the Figure 6 power annotations -- original
0.39 W static + 3.20 W dynamic, DCD 0.39+3.27, DCD+PM 0.46+3.49,
trimmed single-CU dynamics between 2.77 and 3.29 W):

``P_dynamic = P_ddr + P_soc(ratio) + P_pm(brams) + P_active
              + P_clock x (instantiated CU logic, in full-CU units)``

The *active* term is the switching power of the instruction stream in
flight; it follows the workload, which the system feeds at a roughly
configuration-independent rate, so replicated CUs mostly add
clock-tree and idle-logic load (the ``P_clock`` term).  Trimming
attacks exactly that term: the removed logic was idle -- it burned
clock-tree and leakage power, not useful switching -- which is why the
paper's savings in *power* track savings in *area* rather than
activity (Section 3.2: "this core requires less power since there are
fewer hardware components to feed").

``P_static = base die leakage + per-logic leakage + per-BRAM leakage``.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import calibration as cal


@dataclass(frozen=True)
class PowerEstimate:
    """Static/dynamic split, in Watts."""

    static: float
    dynamic: float

    @property
    def total(self):
        return self.static + self.dynamic

    def to_dict(self):
        return {"static": self.static, "dynamic": self.dynamic,
                "total": self.total}

    @classmethod
    def from_dict(cls, payload):
        return cls(static=payload["static"], dynamic=payload["dynamic"])

    def __str__(self):
        return "{:.2f}W ({:.2f} static + {:.2f} dynamic)".format(
            self.total, self.static, self.dynamic)


#: Logic size of one full (untrimmed, 32-bit) compute unit, used as the
#: normalisation unit of the clock-tree term.
def _full_cu_logic():
    full = cal.FRONTEND_AREA + cal.REGFILE_AREA + cal.DECODE_AREA
    for vec in cal.FU_AREA.values():
        full = full + vec
    return full


_FULL_CU = _full_cu_logic()
_FULL_CU_LOGIC_UNITS = _FULL_CU.ff + _FULL_CU.lut

#: Logic size of one full original design, normalising static leakage.
_FULL_DESIGN_UNITS = (
    _FULL_CU_LOGIC_UNITS
    + cal.SOC_AREA.ff + cal.SOC_AREA.lut
    + cal.RELAY_DATAPATH_AREA.ff + cal.RELAY_DATAPATH_AREA.lut
)


class PowerModel:
    """Estimates board power for a synthesised configuration."""

    def estimate(self, total_area, cu_logic_area, clock_ratio,
                 prefetch_brams=0):
        """Power of a configuration.

        Parameters
        ----------
        total_area:
            Whole-design :class:`ResourceVector` (from synthesis).
        cu_logic_area:
            Summed CU logic (all CUs, excluding prefetch BRAMs).
        clock_ratio:
            MicroBlaze-domain over CU-domain clock ratio (1 or 4).
        prefetch_brams:
            RAMB36 blocks devoted to prefetch buffers.
        """
        cu_units = (cu_logic_area.ff + cu_logic_area.lut) / _FULL_CU_LOGIC_UNITS
        dynamic = (
            cal.P_DDR_DYNAMIC
            + cal.P_SOC_DYNAMIC_AT_CU_CLOCK * clock_ratio
            + cal.P_PM_BRAM_DYNAMIC * prefetch_brams
            + cal.P_ACTIVE_DYNAMIC
            + cal.P_CLOCK_TREE_PER_CU * cu_units
        )
        design_units = (total_area.ff + total_area.lut) / _FULL_DESIGN_UNITS
        static = (
            cal.P_STATIC_BASE
            + cal.P_STATIC_PER_DESIGN * design_units
            + cal.P_STATIC_PER_BRAM * total_area.bram
        )
        return PowerEstimate(static=static, dynamic=dynamic)
