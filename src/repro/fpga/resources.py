"""FPGA resource vectors and the Virtex-7 device model.

Everything the SCRATCH area model reasons about is a
:class:`ResourceVector` over the four resource classes Figure 6
reports: slice flip-flops, slice LUTs, DSP48 slices and block RAMs.
The evaluation board is an AlphaData ADM-PCIE-7V3 carrying a Xilinx
Virtex-7 XC7VX690T (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResourceError

RESOURCE_KINDS = ("ff", "lut", "dsp", "bram")


@dataclass(frozen=True)
class ResourceVector:
    """Counts of the four FPGA resource classes."""

    ff: float = 0.0
    lut: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0

    def __add__(self, other):
        return ResourceVector(self.ff + other.ff, self.lut + other.lut,
                              self.dsp + other.dsp, self.bram + other.bram)

    def __sub__(self, other):
        return ResourceVector(self.ff - other.ff, self.lut - other.lut,
                              self.dsp - other.dsp, self.bram - other.bram)

    def scale(self, factor):
        return ResourceVector(self.ff * factor, self.lut * factor,
                              self.dsp * factor, self.bram * factor)

    def scale_each(self, ff=1.0, lut=1.0, dsp=1.0, bram=1.0):
        return ResourceVector(self.ff * ff, self.lut * lut,
                              self.dsp * dsp, self.bram * bram)

    def fits_in(self, other, margin=1.0):
        """Whether this vector fits in ``other`` scaled by ``margin``."""
        return (self.ff <= other.ff * margin and self.lut <= other.lut * margin
                and self.dsp <= other.dsp * margin
                and self.bram <= other.bram * margin)

    def fraction_of(self, other):
        """Per-class utilisation fractions relative to ``other``."""
        def frac(a, b):
            return a / b if b else 0.0
        return {
            "ff": frac(self.ff, other.ff),
            "lut": frac(self.lut, other.lut),
            "dsp": frac(self.dsp, other.dsp),
            "bram": frac(self.bram, other.bram),
        }

    def rounded(self):
        return ResourceVector(round(self.ff), round(self.lut),
                              round(self.dsp), round(self.bram))

    def as_dict(self):
        return {"ff": self.ff, "lut": self.lut, "dsp": self.dsp, "bram": self.bram}

    #: ``to_dict``/``from_dict`` aliases so resource vectors round-trip
    #: under the repo-wide serialization convention.
    to_dict = as_dict

    @classmethod
    def from_dict(cls, payload):
        return cls(ff=payload["ff"], lut=payload["lut"],
                   dsp=payload["dsp"], bram=payload["bram"])

    def __str__(self):
        return "FF={:.0f} LUT={:.0f} DSP={:.0f} BRAM={:.0f}".format(
            self.ff, self.lut, self.dsp, self.bram)


ZERO = ResourceVector()


@dataclass(frozen=True)
class FpgaDevice:
    """An FPGA part: capacity plus a routing-utilisation ceiling.

    ``routing_ceiling`` models that designs stop meeting timing or
    routing well before 100% utilisation; the fit checks of the
    parallelism planner use capacity x ceiling, which is what limits
    the paper's designs to 3 CUs (Section 4.3).
    """

    name: str
    capacity: ResourceVector
    routing_ceiling: float = 0.72

    @property
    def usable(self):
        return ResourceVector(
            ff=self.capacity.ff * self.routing_ceiling,
            lut=self.capacity.lut * self.routing_ceiling,
            dsp=self.capacity.dsp * self.routing_ceiling,
            # BRAM placement is regular; it routes closer to capacity.
            bram=self.capacity.bram * min(1.0, self.routing_ceiling + 0.24),
        )

    def check_fits(self, used, what="design"):
        if not used.fits_in(self.usable):
            raise ResourceError(
                "{} does not fit on {}: needs {}, usable {}".format(
                    what, self.name, used.rounded(), self.usable.rounded()
                )
            )

    def to_dict(self):
        return {
            "name": self.name,
            "capacity": self.capacity.as_dict(),
            "routing_ceiling": self.routing_ceiling,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            name=payload["name"],
            capacity=ResourceVector.from_dict(payload["capacity"]),
            routing_ceiling=payload["routing_ceiling"],
        )


#: The evaluation device (Virtex-7 XC7VX690T).
XC7VX690T = FpgaDevice(
    name="xc7vx690t",
    capacity=ResourceVector(ff=866_400, lut=433_200, dsp=3_600, bram=1_470),
)
