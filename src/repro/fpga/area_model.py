"""Analytic FPGA area model of the MIAOW2.0 system.

Stands in for Vivado synthesis in the SCRATCH flow.  The model is
compositional: a compute unit is the sum of its front-end, register
file, decode logic and functional units; each functional unit splits
into a structural base (operand routing, pipeline registers) and a
per-instruction portion weighted by computational category.  Trimming
an instruction removes its decode and execute share; trimming a whole
unit removes the unit *and* its register-file port logic.

Calibrated against the paper's Figure 6 utilisation numbers -- see
:mod:`repro.fpga.calibration` for the decomposition table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.categories import FunctionalUnit
from ..isa.tables import ISA
from . import calibration as cal
from .resources import ResourceVector, ZERO

_TRIMMABLE = (FunctionalUnit.SALU, FunctionalUnit.SIMD,
              FunctionalUnit.SIMF, FunctionalUnit.LSU)


def _weight(spec):
    return cal.CATEGORY_WEIGHT[spec.category]


@dataclass
class CuAreaBreakdown:
    """Per-component area of one compute unit."""

    components: Dict[str, ResourceVector] = field(default_factory=dict)

    @property
    def total(self):
        total = ZERO
        for vec in self.components.values():
            total = total + vec
        return total


class AreaModel:
    """Prices compute units and full systems in FPGA resources."""

    def __init__(self, registry=ISA):
        self.registry = registry
        self._unit_weight_totals = {}
        for unit in _TRIMMABLE:
            specs = registry.for_unit(unit)
            self._unit_weight_totals[unit] = sum(_weight(s) for s in specs)
        self._decode_weight_total = sum(
            _weight(s) for s in registry.implemented())

    # ------------------------------------------------------------------

    def kept_fraction(self, unit, supported):
        """Weighted fraction of ``unit``'s instructions that survive.

        ``supported=None`` means the full ISA (fraction 1.0).
        """
        if supported is None:
            return 1.0
        total = self._unit_weight_totals[unit]
        if total == 0:
            return 0.0
        kept = sum(
            _weight(s) for s in self.registry.for_unit(unit)
            if s.name in supported
        )
        return kept / total

    def decode_kept_fraction(self, supported):
        if supported is None:
            return 1.0
        kept = sum(
            _weight(s) for s in self.registry.implemented()
            if s.name in supported
        )
        return kept / self._decode_weight_total

    def unit_present(self, unit, supported, num_simd=1, num_simf=1):
        """Whether any logic of ``unit`` remains after trimming."""
        if unit is FunctionalUnit.SIMD and num_simd == 0:
            return False
        if unit is FunctionalUnit.SIMF and num_simf == 0:
            return False
        return self.kept_fraction(unit, supported) > 0.0

    # ------------------------------------------------------------------

    def _fu_area(self, unit, supported, datapath_bits):
        """Area of one instance of a (possibly trimmed) functional unit.

        A fully removed unit costs nothing.  A retained unit keeps its
        structural base plus the per-instruction share of the kept
        instructions; the freed share applies fully to FF/LUT but
        barely to DSP48s and not at all to BRAM (see the sensitivity
        constants in :mod:`repro.fpga.calibration`).
        """
        kept = self.kept_fraction(unit, supported)
        if kept == 0.0:
            return ZERO
        full = cal.FU_AREA[unit]
        freed = (1.0 - cal.FU_BASE_FRACTION[unit]) * (1.0 - kept)
        area = full - full.scale_each(
            ff=freed, lut=freed,
            dsp=freed * cal.DSP_TRIM_SENSITIVITY,
            bram=freed * cal.BRAM_TRIM_SENSITIVITY,
        )
        if unit in (FunctionalUnit.SIMD, FunctionalUnit.SIMF):
            area = area.scale(cal.datapath_scale(datapath_bits))
        return area

    def cu_area(self, supported=None, num_simd=1, num_simf=1,
                datapath_bits=32, prefetch=True, prefetch_brams=None):
        """Break down one compute unit's area.

        ``supported`` is the surviving mnemonic set (or ``None`` for the
        full ISA).  VALU counts beyond the first replicate trimmed
        copies of the unit plus extra register-file ports.
        """
        bd = CuAreaBreakdown()
        ds = cal.datapath_scale(datapath_bits)
        bd.components["frontend"] = cal.FRONTEND_AREA

        regfile = cal.REGFILE_AREA.scale(0.35 + 0.65 * ds)
        for unit, share in cal.REGFILE_PORT_SHARE.items():
            count = num_simd if unit is FunctionalUnit.SIMD else num_simf
            if not self.unit_present(unit, supported, num_simd, num_simf):
                regfile = regfile - cal.REGFILE_AREA.scale(share).scale(
                    0.35 + 0.65 * ds)
            elif count > 1:
                extra = cal.REGFILE_AREA.scale(share * 0.6 * (count - 1))
                regfile = regfile + extra.scale(0.35 + 0.65 * ds)
        bd.components["regfile"] = regfile

        decode_fraction = (cal.DECODE_BASE_FRACTION
                           + (1 - cal.DECODE_BASE_FRACTION)
                           * self.decode_kept_fraction(supported))
        bd.components["decode"] = cal.DECODE_AREA.scale(decode_fraction)

        bd.components["salu"] = self._fu_area(
            FunctionalUnit.SALU, supported, 32)
        bd.components["lsu"] = self._fu_area(FunctionalUnit.LSU, supported, 32)
        simd_one = self._fu_area(FunctionalUnit.SIMD, supported, datapath_bits)
        simf_one = self._fu_area(FunctionalUnit.SIMF, supported, datapath_bits)
        bd.components["simd"] = simd_one.scale(num_simd)
        bd.components["simf"] = simf_one.scale(num_simf)

        if prefetch:
            pm = cal.PREFETCH_CTRL_AREA
            brams = (cal.PREFETCH_BASELINE_BRAMS if prefetch_brams is None
                     else prefetch_brams)
            bd.components["prefetch"] = pm + ResourceVector(bram=brams)
        return bd

    def cu_area_for_config(self, config, prefetch_brams=None):
        """CU breakdown for an :class:`~repro.core.config.ArchConfig`."""
        return self.cu_area(
            supported=config.supported,
            num_simd=config.num_simd,
            num_simf=config.num_simf,
            datapath_bits=config.datapath_bits,
            prefetch=config.has_prefetch,
            prefetch_brams=prefetch_brams,
        )

    def soc_area(self, prefetch=True):
        """Area of the non-CU system (MicroBlaze, MIG, AXI, debug)."""
        if prefetch:
            return cal.SOC_AREA
        return cal.SOC_AREA + cal.RELAY_DATAPATH_AREA
