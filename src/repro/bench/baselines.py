"""Baseline files + regression comparison for ``repro bench --check``.

A *baseline* is the JSON payload of a previous ``repro bench --json``
run, checked into the repo root.  :func:`compare_reports` walks the
current payload against it metric by metric and reports every movement
beyond :data:`REGRESSION_THRESHOLD` in the bad direction.

Two metric classes:

* **machine-independent** ratios (``speedup_vs_reference``,
  ``cache_hit_rate``): comparable across hosts, enforced everywhere.
* **absolute** wall-clock metrics (``wall_*``, ``inst_per_s``,
  ``jobs_per_second``, ``latency_*``): only meaningful against a
  baseline recorded on the same class of machine, so they are
  *report-only* unless the caller opts into strict mode (CI does, on
  main, where baseline and run share the runner type).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

#: A metric may move this fraction in the bad direction before it
#: counts as a regression.
REGRESSION_THRESHOLD = 0.20

#: metric name -> (higher_is_better, machine_independent)
_METRICS = {
    "speedup_vs_reference": (True, True),
    "speedup_superblock_vs_reference": (True, True),
    "cache_hit_rate": (True, True),
    "warm_board_rate": (True, True),
    "store_hit_rate": (True, True),
    "inst_per_s": (True, False),
    "inst_per_s_superblock": (True, False),
    "speedup_fused_vs_unfused": (True, False),
    "jobs_per_second": (True, False),
    "points_per_second": (True, False),
    "resume_speedup": (True, False),
    "short_latency_speedup": (True, False),
    "wall_reference_s": (False, False),
    "wall_fast_s": (False, False),
    "wall_superblock_s": (False, False),
    "wall_superblock_unfused_s": (False, False),
    "latency_p50_s": (False, False),
    "latency_p95_s": (False, False),
}


@dataclass(frozen=True)
class Regression:
    """One metric that moved beyond threshold in the bad direction."""

    path: str           # e.g. "kernels.matrix_mul_i32.speedup_vs_reference"
    baseline: float
    current: float
    change: float       # signed fractional change, bad direction positive
    enforced: bool      # machine-independent -> can fail the build

    def __str__(self):
        kind = "ENFORCED" if self.enforced else "report-only"
        return ("{}: {:.4g} -> {:.4g} ({:+.1%} worse) [{}]".format(
            self.path, self.baseline, self.current, self.change, kind))


def _check_metric(path, name, base_value, cur_value, threshold, out):
    higher_better, independent = _METRICS[name]
    try:
        base_value = float(base_value)
        cur_value = float(cur_value)
    except (TypeError, ValueError):
        return
    if base_value == 0:
        return
    if higher_better:
        change = (base_value - cur_value) / base_value
    else:
        change = (cur_value - base_value) / base_value
    if change > threshold:
        out.append(Regression(path=path, baseline=base_value,
                              current=cur_value, change=change,
                              enforced=independent))


def _walk(path, baseline, current, threshold, out):
    if not isinstance(baseline, dict) or not isinstance(current, dict):
        return
    for key, base_value in baseline.items():
        if key not in current:
            continue
        child_path = "{}.{}".format(path, key) if path else key
        if key in _METRICS:
            _check_metric(child_path, key, base_value, current[key],
                          threshold, out)
        else:
            _walk(child_path, base_value, current[key], threshold, out)


def compare_reports(baseline, current, threshold=REGRESSION_THRESHOLD):
    """All regressions of ``current`` vs ``baseline``, worst first.

    Only metrics present in *both* payloads are compared, so adding a
    kernel to the bench set does not fail against an older baseline.
    """
    out = []
    _walk("", baseline, current, threshold, out)
    out.sort(key=lambda r: r.change, reverse=True)
    return out


#: The superblock engine may give back at most this fraction of the
#: fast engine's speedup on any kernel.  Block compilation exists to be
#: *at least* as fast as plain fast dispatch on straight-line code; a
#: kernel where it falls further behind (as bitonic_sort once did, from
#: closure-dispatched VALU ops inside fused blocks) is a compiled-path
#: regression even when every baseline ratio still passes.
SUPERBLOCK_FLOOR = 0.95


def check_invariants(payload):
    """Self-consistency checks on one simulator payload, no baseline.

    Returns a list of problem strings (empty when healthy).  Checked
    per kernel: ``speedup_superblock_vs_reference >=
    SUPERBLOCK_FLOOR * speedup_vs_reference``.  The reference time
    cancels out of that ratio, so it is evaluated as ``wall_fast /
    wall_superblock >= SUPERBLOCK_FLOOR`` on the *best-of-N* wall
    times when the full sample records are present (best-of is far
    more robust to host contention spikes than the median the speedup
    fields are computed from), falling back to the median-based
    speedup fields for older or hand-built payloads.
    """
    problems = []
    for name, entry in sorted((payload or {}).get("kernels", {}).items()):
        if not isinstance(entry, dict):
            continue
        try:
            fast_best = float(entry["wall_fast"]["best_s"])
            superblock_best = float(entry["wall_superblock"]["best_s"])
            ratio = fast_best / superblock_best
            detail = "best-of wall_fast {:.4g}s / wall_superblock {:.4g}s"\
                .format(fast_best, superblock_best)
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            try:
                fast = float(entry["speedup_vs_reference"])
                superblock = float(entry["speedup_superblock_vs_reference"])
                ratio = superblock / fast
                detail = ("speedup_superblock_vs_reference {:.3f} / "
                          "speedup_vs_reference {:.3f}".format(
                              superblock, fast))
            except (KeyError, TypeError, ValueError, ZeroDivisionError):
                continue
        if ratio < SUPERBLOCK_FLOOR:
            problems.append(
                "kernels.{}: superblock holds {:.3f} of the fast "
                "engine's speedup, floor is {:.2f} ({})"
                .format(name, ratio, SUPERBLOCK_FLOOR, detail))
    return problems


def check_cpi(baseline, current):
    """Exact comparison of the per-class CPI tables.

    CPI values are simulated, not measured, so any difference at all
    is a timing-model change: either an intended one (refresh the
    baseline) or a regression.  Compared exactly, no threshold.  Only
    classes present in both payloads are checked, so adding a CPI
    kernel does not fail against an older baseline; a missing table on
    either side is skipped entirely (pre-schema-4 baselines).
    """
    problems = []
    base_table = (baseline or {}).get("cpi")
    cur_table = (current or {}).get("cpi")
    if not isinstance(base_table, dict) or not isinstance(cur_table, dict):
        return problems
    for name, base_entry in sorted(base_table.items()):
        cur_entry = cur_table.get(name)
        if not isinstance(base_entry, dict) or not isinstance(cur_entry, dict):
            continue
        for field in ("instructions", "cu_cycles", "cpi"):
            if field in base_entry and field in cur_entry \
                    and base_entry[field] != cur_entry[field]:
                problems.append(
                    "cpi.{}.{}: {!r} -> {!r} (timing model changed; "
                    "CPI table is compared exactly)".format(
                        name, field, base_entry[field], cur_entry[field]))
    return problems


def load_baseline(path):
    """Load one checked-in baseline file; None if it does not exist."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def write_baseline(path, payload):
    """Write a baseline payload (stable formatting for clean diffs)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
