"""Wall-clock performance-regression harness behind ``repro bench``.

The conformance suite (:mod:`repro.verify`) pins down *what* the
simulator computes; this package pins down *how fast* the host computes
it.  It measures three things:

* simulated-instructions-per-second per kernel, for the reference
  interpreter and the fast launch engines,
* end-to-end launch makespan (wall clock per full benchmark run),
* service job throughput and latency percentiles.

Results are written to machine-readable baseline files at the repo
root (``BENCH_simulator.json`` / ``BENCH_service.json``) and compared
against the checked-in baselines with a regression threshold, so a
change that quietly makes the simulator 20% slower fails CI the same
way a wrong cycle count would.

See ``docs/benchmarking.md`` for the workflow.
"""

from .baselines import (
    REGRESSION_THRESHOLD,
    SUPERBLOCK_FLOOR,
    Regression,
    check_cpi,
    check_invariants,
    compare_reports,
    load_baseline,
    write_baseline,
)
from .dse import DSE_BASELINE_FILE, bench_dse
from .harness import Measurement, measure, percentile
from .service import SERVICE_BASELINE_FILE, bench_preemption, bench_service
from .simulator import (
    BENCH_KERNELS,
    SIMULATOR_BASELINE_FILE,
    SMOKE_KERNELS,
    bench_kernel,
    bench_simulator,
    cpi_table,
)

__all__ = [
    "BENCH_KERNELS", "DSE_BASELINE_FILE", "Measurement",
    "REGRESSION_THRESHOLD", "Regression", "SERVICE_BASELINE_FILE",
    "SIMULATOR_BASELINE_FILE", "SMOKE_KERNELS", "SUPERBLOCK_FLOOR",
    "bench_dse",
    "bench_kernel", "bench_preemption", "bench_service", "bench_simulator",
    "check_cpi", "check_invariants", "compare_reports", "cpi_table",
    "load_baseline", "measure", "percentile", "write_baseline",
]
