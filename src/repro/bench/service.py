"""Service-level throughput and latency benchmarks.

Submits a repeated-job workload (the pattern the content-addressed
artifact cache accelerates) through a threaded
:class:`~repro.service.KernelService` and reports wall-clock job
throughput, latency percentiles and the cache hit rate.  Thread mode
keeps the measurement about the service itself -- process-pool spawn
cost is a platform property, not a regression signal.
"""

from __future__ import annotations

#: Baseline file at the repo root (see docs/benchmarking.md).
SERVICE_BASELINE_FILE = "BENCH_service.json"

#: Repeated-submission workload: each benchmark appears ``rounds``
#: times, so all but the first submission of each hits the caches.
SERVICE_BENCHMARKS = ("scan_large_arrays", "prefix_sum", "binary_search")


def bench_service(benchmarks=None, rounds=4, workers=2, log=None):
    """Run the service workload; returns the ``BENCH_service`` payload."""
    from ..service import Job, KernelService

    log = log or (lambda message: None)
    benchmarks = tuple(benchmarks or SERVICE_BENCHMARKS)
    jobs = [Job(benchmark=name, config="baseline", verify=False)
            for _ in range(rounds) for name in benchmarks]
    log("service bench: {} jobs ({} benchmarks x {} rounds), "
        "{} thread workers".format(len(jobs), len(benchmarks), rounds,
                                   workers))
    with KernelService(workers=workers, mode="thread") as service:
        service.submit_many(jobs)
        results = service.drain()
        snapshot = service.snapshot()
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            "service bench had {} failed job(s); first: {}".format(
                len(failed), failed[0].error))
    return {
        "schema": 1,
        "jobs": len(jobs),
        "rounds": rounds,
        "workers": workers,
        "benchmarks": list(benchmarks),
        "jobs_per_second": snapshot["jobs_per_second"],
        "latency_p50_s": snapshot["latency_p50_s"],
        "latency_p95_s": snapshot["latency_p95_s"],
        "cache_hit_rate": snapshot["cache"]["hit_rate"],
        "warm_board_rate": snapshot["warm_board_rate"],
    }


def render_service(payload):
    """Human-readable summary of one ``bench_service`` payload."""
    return ("service: {jobs} jobs, {jobs_per_second:.2f} jobs/s, "
            "p50 {latency_p50_s:.3f}s p95 {latency_p95_s:.3f}s, "
            "cache hit rate {cache_hit_rate:.0%}, "
            "warm boards {warm_board_rate:.0%}".format(**payload))
