"""Service-level throughput and latency benchmarks.

Submits a repeated-job workload (the pattern the content-addressed
artifact cache accelerates) through a threaded
:class:`~repro.service.KernelService` and reports wall-clock job
throughput, latency percentiles and the cache hit rate.  Thread mode
keeps the measurement about the service itself -- process-pool spawn
cost is a platform property, not a regression signal.
"""

from __future__ import annotations

#: Baseline file at the repo root (see docs/benchmarking.md).
SERVICE_BASELINE_FILE = "BENCH_service.json"

#: Repeated-submission workload: each benchmark appears ``rounds``
#: times, so all but the first submission of each hits the caches.
SERVICE_BENCHMARKS = ("scan_large_arrays", "prefix_sum", "binary_search")

#: Preemption scenario knobs: a single-worker service with a backlog
#: of long jobs, then urgent short jobs submitted behind them.  The
#: board is kept small (1 MiB) so checkpoint capture -- which images
#: all of global memory -- stays a measurement of scheduling, not of
#: hashing 16 MiB per slice.
PREEMPT_LONG_JOBS = 3
PREEMPT_SHORT_JOBS = 6
PREEMPT_LONG_N = 256
PREEMPT_SLICE_INSTRUCTIONS = 4000
PREEMPT_MEM = 1 << 20


def _preemption_round(slice_instructions):
    """One single-worker run of the backlog scenario.

    Returns (short-job latencies, service snapshot).  With
    ``slice_instructions=None`` the long jobs run to completion and the
    short jobs wait behind them -- the control; with a budget, long
    jobs yield at slice boundaries and the priority queue lets the
    short jobs jump in between slices.
    """
    import time

    from ..service import Job, KernelService

    long_jobs = [Job("matrix_add_i32", {"n": PREEMPT_LONG_N},
                     config="baseline", verify=False, priority=5,
                     global_mem_size=PREEMPT_MEM,
                     slice_instructions=slice_instructions)
                 for _ in range(PREEMPT_LONG_JOBS)]
    short_jobs = [Job("matrix_add_i32", {"n": 16}, config="baseline",
                      verify=False, priority=-5,
                      global_mem_size=PREEMPT_MEM)
                  for _ in range(PREEMPT_SHORT_JOBS)]
    with KernelService(workers=1, mode="thread",
                       max_inflight=1) as service:
        service.submit_many(long_jobs)
        # The scenario is "urgent work arrives *while* a long job is
        # running" -- wait for the dispatcher to pull the first long
        # job off the queue, or the priority queue would simply run
        # the short jobs first and measure nothing.
        deadline = time.monotonic() + 5.0
        while (len(service.queue) >= len(long_jobs)
               and time.monotonic() < deadline):
            time.sleep(0.001)
        time.sleep(0.02)
        service.submit_many(short_jobs)
        results = service.drain()
        snapshot = service.snapshot()
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            "preemption bench had {} failed job(s); first: {}".format(
                len(failed), failed[0].error))
    short_latencies = [r.latency_s for r in results[len(long_jobs):]]
    return short_latencies, snapshot


def bench_preemption(log=None):
    """Short-job latency under a long-job backlog, with and without
    time slicing; returns the ``preemption`` sub-payload."""
    from .harness import percentile

    log = log or (lambda message: None)
    log("preemption bench: {} long + {} short jobs, 1 worker, "
        "control (no slicing) then slice={}".format(
            PREEMPT_LONG_JOBS, PREEMPT_SHORT_JOBS,
            PREEMPT_SLICE_INSTRUCTIONS))
    plain_lat, plain_snap = _preemption_round(None)
    sliced_lat, sliced_snap = _preemption_round(
        PREEMPT_SLICE_INSTRUCTIONS)
    p95_plain = percentile(plain_lat, 95)
    p95_sliced = percentile(sliced_lat, 95)
    return {
        "long_jobs": PREEMPT_LONG_JOBS,
        "short_jobs": PREEMPT_SHORT_JOBS,
        "slice_instructions": PREEMPT_SLICE_INSTRUCTIONS,
        "preemptions": sliced_snap["preemptions"],
        #: Short-job p95 with slicing on -- the SLO the scenario buys.
        "latency_p95_s": p95_sliced,
        "short_p95_plain_s": p95_plain,
        "short_latency_speedup": (p95_plain / p95_sliced
                                  if p95_sliced > 0 else 0.0),
        #: Whole-scenario throughput with slicing on, to keep the
        #: latency win honest about its checkpoint overhead.
        "jobs_per_second": sliced_snap["jobs_per_second"],
        "jobs_per_second_plain": plain_snap["jobs_per_second"],
    }


def bench_service(benchmarks=None, rounds=4, workers=2, log=None,
                  preemption=True):
    """Run the service workload; returns the ``BENCH_service`` payload."""
    from ..service import Job, KernelService

    log = log or (lambda message: None)
    benchmarks = tuple(benchmarks or SERVICE_BENCHMARKS)
    jobs = [Job(benchmark=name, config="baseline", verify=False)
            for _ in range(rounds) for name in benchmarks]
    log("service bench: {} jobs ({} benchmarks x {} rounds), "
        "{} thread workers".format(len(jobs), len(benchmarks), rounds,
                                   workers))
    with KernelService(workers=workers, mode="thread") as service:
        service.submit_many(jobs)
        results = service.drain()
        snapshot = service.snapshot()
    failed = [r for r in results if not r.ok]
    if failed:
        raise RuntimeError(
            "service bench had {} failed job(s); first: {}".format(
                len(failed), failed[0].error))
    payload = {
        "schema": 1,
        "jobs": len(jobs),
        "rounds": rounds,
        "workers": workers,
        "benchmarks": list(benchmarks),
        "jobs_per_second": snapshot["jobs_per_second"],
        "latency_p50_s": snapshot["latency_p50_s"],
        "latency_p95_s": snapshot["latency_p95_s"],
        "cache_hit_rate": snapshot["cache"]["hit_rate"],
        "warm_board_rate": snapshot["warm_board_rate"],
    }
    if preemption:
        payload["preemption"] = bench_preemption(log=log)
    return payload


def render_service(payload):
    """Human-readable summary of one ``bench_service`` payload."""
    text = ("service: {jobs} jobs, {jobs_per_second:.2f} jobs/s, "
            "p50 {latency_p50_s:.3f}s p95 {latency_p95_s:.3f}s, "
            "cache hit rate {cache_hit_rate:.0%}, "
            "warm boards {warm_board_rate:.0%}".format(**payload))
    preempt = payload.get("preemption")
    if preempt:
        text += ("\npreemption: short-job p95 {latency_p95_s:.3f}s "
                 "sliced vs {short_p95_plain_s:.3f}s plain "
                 "({short_latency_speedup:.1f}x), {preemptions} "
                 "preemptions, {jobs_per_second:.2f} jobs/s".format(
                     **preempt))
    return text
