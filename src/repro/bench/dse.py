"""Design-space-exploration sweep benchmarks.

Times the ``paper --smoke`` grid twice through one content-addressed
result store: the first pass pays simulation for every point, the
second must come entirely out of the store.  Reported metrics follow
the repo's two-class convention (docs/benchmarking.md):

* ``store_hit_rate`` -- reused/total points on the resumed pass.  A
  deterministic property of the store keying, machine-independent,
  *enforced*: if resumability breaks, this drops to 0 and CI fails.
* ``points_per_second`` / ``resume_speedup`` -- wall-clock figures,
  report-only (host-dependent and, for small smoke grids, noisy).
"""

from __future__ import annotations

import shutil
import tempfile
import time

#: Baseline file at the repo root (see docs/benchmarking.md).
DSE_BASELINE_FILE = "BENCH_dse.json"


def bench_dse(workers=4, log=None):
    """Run the DSE sweep benchmark; returns the ``BENCH_dse`` payload."""
    from ..dse import SweepRunner, SweepSpec, preset

    log = log or (lambda message: None)
    space = preset("paper", smoke=True)
    store_dir = tempfile.mkdtemp(prefix="repro-bench-dse-")
    try:
        walls = []
        reports = []
        for label in ("cold", "resumed"):
            spec = SweepSpec(space=space, workers=workers,
                             store_dir=store_dir)
            started = time.perf_counter()
            reports.append(SweepRunner(spec).sweep())
            walls.append(time.perf_counter() - started)
            log("dse bench: {} sweep of {} points in {:.2f}s".format(
                label, len(space), walls[-1]))
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    cold, resumed = reports
    points = len(space)
    return {
        "schema": 1,
        "space": space.name,
        "points": points,
        "workers": workers,
        "ok_points": len(cold.ok_results),
        "pareto_points": len(cold.frontier_results()),
        "store_hit_rate": resumed.reused / points if points else 0.0,
        "points_per_second": points / walls[0] if walls[0] else 0.0,
        "resume_speedup": walls[0] / walls[1] if walls[1] else 0.0,
    }


def render_dse(payload):
    """Human-readable summary of one ``bench_dse`` payload."""
    return ("dse: {points} points ({ok_points} ok, {pareto_points} "
            "pareto), {points_per_second:.1f} points/s cold, "
            "store hit rate {store_hit_rate:.0%}, "
            "resume speedup {resume_speedup:.1f}x".format(**payload))
