"""Timing primitives: warm-up-excluded wall-clock measurement.

Every number the bench harness reports comes through
:func:`measure`, which runs a callable ``warmup`` times unrecorded
(JIT-free Python still has cold caches: the decode memo, the prepared-
program cache, numpy's first-touch allocations) and then ``repeat``
recorded times.  The *median* is the headline statistic -- robust to a
single noisy neighbour -- with best/worst retained for context.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List


def percentile(values, p):
    """Linear-interpolated percentile of ``values`` (p in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class Measurement:
    """Wall-clock samples of one benchmarked callable."""

    samples: List[float]          # recorded runs, seconds, in run order
    warmup_samples: List[float]   # excluded warm-up runs, for reference

    @property
    def median(self):
        return percentile(self.samples, 50)

    @property
    def best(self):
        return min(self.samples)

    @property
    def worst(self):
        return max(self.samples)

    def to_dict(self):
        return {
            "median_s": self.median,
            "best_s": self.best,
            "worst_s": self.worst,
            "samples_s": list(self.samples),
            "warmup_s": list(self.warmup_samples),
        }


def measure(fn, repeat=3, warmup=1):
    """Time ``fn()`` ``repeat`` times after ``warmup`` excluded runs."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    warmup_samples = []
    for _ in range(max(0, warmup)):
        started = time.perf_counter()
        fn()
        warmup_samples.append(time.perf_counter() - started)
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return Measurement(samples=samples, warmup_samples=warmup_samples)
