"""Per-kernel simulator throughput benchmarks.

Each kernel is run end to end (prepare -> preload -> execute) through
the :mod:`repro.exec` layer -- warm-board leasing included, exactly
like production callers -- once per engine:

* ``reference``  -- the original interpreter loop,
* ``fast``       -- the prepared-plan serial engine,
* ``superblock`` -- the fast loop with fused straight-line ALU runs
  (the ``auto`` default engine),
* ``parallel``   -- the measure-then-schedule engine on a multi-CU
  board (skipped for single-CU benchmarking).

Reported per kernel: simulated instructions, simulated seconds
(deterministic -- a change here is a model change, not a perf
regression), wall-clock medians per engine, simulated-instructions-
per-second on the fast and superblock engines, the
``speedup_vs_reference`` / ``speedup_superblock_vs_reference``
machine-independent ratios CI enforces, and the report-only
``speedup_fused_vs_unfused`` ratio (the superblock engine with
closed-form block timing vs. the same engine stepping the per-step
table).

The payload also carries the ``cpi`` table: deterministic
cycles-per-instruction for each :data:`repro.kernels.cpi.CPI_SUITE`
class, compared *exactly* against the baseline -- a timing-model
tripwire, not a perf metric (see docs/benchmarking.md).
"""

from __future__ import annotations

from ..core.config import ArchConfig
from ..errors import ReproError
from ..exec import ExecutionRequest, Executor
from .harness import measure

#: Baseline file at the repo root (see docs/benchmarking.md).
SIMULATOR_BASELINE_FILE = "BENCH_simulator.json"

#: Default benchmarked kernels: the paper's Figure 6 evaluation core
#: plus a scan-heavy SDK kernel, spanning int/float ALU, LDS traffic,
#: barriers and both memory footprint extremes.
BENCH_KERNELS = (
    "matrix_mul_i32",
    "matrix_add_i32",
    "matrix_transpose_i32",
    "conv2d_i32",
    "bitonic_sort_i32",
    "kmeans_f32",
    "cnn_i32",
    "scan_large_arrays",
    "prefix_sum",
)

#: The two fastest kernels of the suite -- the CI smoke set.
SMOKE_KERNELS = ("scan_large_arrays", "prefix_sum")

#: Benchmark problem sizes where they differ from the kernel's test
#: default.  The headline matrix multiply runs at n=32 so the simulated
#: work (not per-launch board setup, which both engines pay equally)
#: dominates the wall clock being compared.
BENCH_PARAMS = {
    "matrix_mul_i32": {"n": 32},
}


#: The benchmark's own executor: a private pool so bench timings are
#: not perturbed by (and do not perturb) other subsystems' warm boards.
_BENCH_EXECUTOR = Executor()


def _run_once(name, engine, verify=False):
    """One full benchmark run through the exec layer; returns the result."""
    return _BENCH_EXECUTOR.execute(ExecutionRequest(
        benchmark=name,
        params=BENCH_PARAMS.get(name, {}),
        arch=ArchConfig.baseline(),
        engine=engine,
        verify=verify,
    ))


#: Minimum wall-clock per timed sample.  Kernels cheaper than this are
#: batched (several full runs per sample, identical for both engines,
#: samples normalised back to per-run) so the speedup ratio is not
#: dominated by scheduler noise on millisecond runs.
TARGET_SAMPLE_S = 0.05


def bench_kernel(name, repeat=3, warmup=1):
    """Benchmark one kernel across engines; returns a metrics dict."""
    import time

    from ..kernels import KERNELS

    if name not in KERNELS:
        raise ReproError("unknown benchmark kernel {!r}; available: {}"
                         .format(name, ", ".join(sorted(KERNELS))))

    # One verified run up front per timed engine: a benchmark of wrong
    # outputs is meaningless.  Also records the deterministic
    # simulation metrics.
    result = _run_once(name, "fast", verify=True)
    _run_once(name, "superblock", verify=True)
    instructions = result.instructions
    sim_seconds = result.seconds

    started = time.perf_counter()
    _run_once(name, "reference")
    probe = time.perf_counter() - started
    inner = max(1, min(25, int(round(TARGET_SAMPLE_S / max(probe, 1e-6)))))

    def batched(engine):
        def run():
            for _ in range(inner):
                _run_once(name, engine)
        return run

    reference = measure(batched("reference"), repeat=repeat, warmup=warmup)
    fast = measure(batched("fast"), repeat=repeat, warmup=warmup)
    superblock = measure(batched("superblock"), repeat=repeat, warmup=warmup)
    # Same engine, closed-form block timing swapped for the per-step
    # table walk: isolates what fusion itself buys (report-only).
    from ..cu.timing import set_timing_fusion

    previous = set_timing_fusion(False)
    try:
        unfused = measure(batched("superblock"), repeat=repeat,
                          warmup=warmup)
    finally:
        set_timing_fusion(previous)
    for m in (reference, fast, superblock, unfused):
        m.samples = [s / inner for s in m.samples]
        m.warmup_samples = [s / inner for s in m.warmup_samples]
    return {
        "inner_loops": inner,
        "instructions": instructions,
        "sim_seconds": sim_seconds,
        "wall_reference": reference.to_dict(),
        "wall_fast": fast.to_dict(),
        "wall_superblock": superblock.to_dict(),
        "wall_reference_s": reference.median,
        "wall_fast_s": fast.median,
        "wall_superblock_s": superblock.median,
        "inst_per_s": instructions / fast.median if fast.median else 0.0,
        "inst_per_s_superblock": (instructions / superblock.median
                                  if superblock.median else 0.0),
        "speedup_vs_reference": (reference.median / fast.median
                                 if fast.median else 0.0),
        "speedup_superblock_vs_reference": (
            reference.median / superblock.median
            if superblock.median else 0.0),
        "wall_superblock_unfused_s": unfused.median,
        "speedup_fused_vs_unfused": (unfused.median / superblock.median
                                     if superblock.median else 0.0),
    }


def cpi_table(log=None):
    """Deterministic cycles-per-instruction per CPI microbenchmark.

    Each :data:`repro.kernels.cpi.CPI_SUITE` kernel runs once,
    verified, on the superblock engine; the ratio of simulated CU
    cycles to executed instructions is exact and machine-independent,
    so the baseline comparison is equality, not a threshold.
    """
    log = log or (lambda message: None)
    from ..kernels.cpi import CPI_SUITE

    table = {}
    for cls in CPI_SUITE:
        log("cpi {} ...".format(cls.name))
        result = _run_once(cls.name, "superblock", verify=True)
        table[cls.name] = {
            "instructions": result.instructions,
            "cu_cycles": result.cu_cycles,
            "cpi": result.cu_cycles / result.instructions,
        }
    return table


def bench_simulator(kernels=None, repeat=3, warmup=1, log=None):
    """Benchmark a kernel set; returns the ``BENCH_simulator`` payload."""
    log = log or (lambda message: None)
    kernels = tuple(kernels or BENCH_KERNELS)
    entries = {}
    for name in kernels:
        log("bench {} ...".format(name))
        entries[name] = bench_kernel(name, repeat=repeat, warmup=warmup)
    payload = {
        "schema": 4,
        "repeat": repeat,
        "kernels": entries,
        "cpi": cpi_table(log=log),
    }
    # Totals are only comparable between runs of the same kernel set;
    # a subset run (--smoke, --kernels) omits them so a regression
    # check against a full-set baseline does not see a phantom drop.
    if set(kernels) == set(BENCH_KERNELS):
        payload["totals"] = _totals(entries)
    return payload


def _totals(entries):
    total_ref = sum(e["wall_reference_s"] for e in entries.values())
    total_fast = sum(e["wall_fast_s"] for e in entries.values())
    total_inst = sum(e["instructions"] for e in entries.values())
    totals = {
        "instructions": total_inst,
        "wall_reference_s": total_ref,
        "wall_fast_s": total_fast,
        "inst_per_s": total_inst / total_fast if total_fast else 0.0,
        "speedup_vs_reference": (total_ref / total_fast
                                 if total_fast else 0.0),
    }
    if all("wall_superblock_s" in e for e in entries.values()):
        total_sb = sum(e["wall_superblock_s"] for e in entries.values())
        totals["wall_superblock_s"] = total_sb
        totals["inst_per_s_superblock"] = (total_inst / total_sb
                                           if total_sb else 0.0)
        totals["speedup_superblock_vs_reference"] = (
            total_ref / total_sb if total_sb else 0.0)
    return totals


def render_simulator(payload):
    """Human-readable table for one ``bench_simulator`` payload."""
    fmt = "{:<24} {:>12} {:>9} {:>9} {:>9} {:>12} {:>8} {:>8}"
    row = ("{:<24} {:>12} {:>9.3f} {:>9.3f} {:>9} {:>12.3e} {:>7.2f}x"
           " {:>8}")
    lines = [fmt.format("kernel", "sim inst", "ref s", "fast s", "sb s",
                        "inst/s", "speedup", "sb spd")]

    def _row(name, entry):
        sb_s = entry.get("wall_superblock_s")
        sb_spd = entry.get("speedup_superblock_vs_reference")
        return row.format(
            name, entry["instructions"], entry["wall_reference_s"],
            entry["wall_fast_s"],
            "{:.3f}".format(sb_s) if sb_s is not None else "-",
            entry["inst_per_s"], entry["speedup_vs_reference"],
            "{:.2f}x".format(sb_spd) if sb_spd is not None else "-")

    for name, entry in payload["kernels"].items():
        lines.append(_row(name, entry))
    totals = payload.get("totals") or _totals(payload["kernels"])
    lines.append(_row("TOTAL", totals))
    cpi = payload.get("cpi")
    if cpi:
        lines.append("")
        lines.append("{:<24} {:>12} {:>12} {:>8}".format(
            "cpi kernel", "sim inst", "cu cycles", "cpi"))
        for name, entry in cpi.items():
            lines.append("{:<24} {:>12} {:>12.1f} {:>8.3f}".format(
                name, entry["instructions"], entry["cu_cycles"],
                entry["cpi"]))
    return "\n".join(lines)
