"""SCRATCH: application-aware soft-GPGPU architecture + trimming tool.

A full-system Python reproduction of "SCRATCH: An End-to-End
Application-Aware Soft-GPGPU Architecture and Trimming Tool"
(Duarte, Tomás, Falcão -- MICRO-50, 2017): the MIAOW2.0 compute-unit
and SoC model, a Southern Islands assembler, FPGA area/power models,
the SCRATCH trimming tool, and the paper's benchmark suite.

Quickstart::

    from repro import ArchConfig, ScratchFlow
    from repro.kernels import KERNELS

    flow = ScratchFlow(KERNELS["matrix_add_i32"](n=64))
    report = flow.trim()                  # Algorithm 1
    print(report.summary())
    metrics = flow.run(flow.plan("multicore"))
    base = flow.run(ArchConfig.original(), verify=False)
    print("speedup:", metrics.speedup_vs(base))
"""

__version__ = "1.0.0"

from .core.config import ArchConfig, Generation
from .core.flow import ScratchFlow
from .core.trimmer import TrimmingTool, TrimResult
from .errors import ReproError, TrimmedInstructionError
from .fpga.synthesis import Synthesizer
from .runtime.device import SoftGpu

__all__ = [
    "ArchConfig", "Generation", "ScratchFlow", "TrimmingTool", "TrimResult",
    "Synthesizer", "SoftGpu", "ReproError", "TrimmedInstructionError",
    "__version__",
]
